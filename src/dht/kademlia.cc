#include "dht/kademlia.h"

#include "common/parallel.h"
#include "telemetry/scoped_timer.h"

#include <algorithm>
#include <stdexcept>

#include "dht/xor_util.h"

namespace canon {

namespace {

std::uint64_t bucket_top(const IdSpace& space, int k) {
  return k + 1 >= space.bits() ? (space.mask() + (space.bits() == 64 ? 0 : 1))
                               : (std::uint64_t{1} << (k + 1));
}

/// Picks a member from the bucket {x : xor(m, x) in [2^k, hi)}.
/// The bucket decomposes as the XOR ball of radius hi - 2^k around
/// center = m ^ 2^k (every bucket element has bit k flipped).
std::uint32_t pick_in_bucket(const OverlayNetwork& net, const RingView& ring,
                             NodeId m_id, int k, std::uint64_t hi,
                             BucketChoice choice, Rng* rng) {
  const IdSpace& space = net.space();
  const std::uint64_t lo = std::uint64_t{1} << k;
  if (hi <= lo) return RingView::kNone;
  const NodeId center = space.wrap(m_id ^ lo);
  const std::uint64_t radius = hi - lo;  // ball around `center`
  const auto ranges = xor_ball_ranges(center, radius, space);

  if (choice == BucketChoice::kClosest) {
    std::uint32_t best = RingView::kNone;
    std::uint64_t best_d = kNoLimit;
    for (const IdRange& r : ranges) {
      const std::uint32_t c = xor_closest_in_range(ring, r.lo, r.size, m_id);
      if (c == RingView::kNone) continue;
      const std::uint64_t d = space.xor_distance(m_id, net.id(c));
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    return best;
  }

  // Uniform choice across the union of ranges (ranges are disjoint).
  std::size_t total = 0;
  for (const IdRange& r : ranges) total += ring.count_in(r.lo, r.size);
  if (total == 0) return RingView::kNone;
  if (rng == nullptr) {
    throw std::logic_error("pick_in_bucket: kRandom requires an Rng");
  }
  std::size_t pick = rng->uniform(total);
  for (const IdRange& r : ranges) {
    const std::size_t c = ring.count_in(r.lo, r.size);
    if (pick < c) return ring.select_in(r.lo, r.size, pick);
    pick -= c;
  }
  return RingView::kNone;  // unreachable
}

}  // namespace

std::uint64_t bucket_closest_distance(const OverlayNetwork& net,
                                      const RingView& ring, NodeId m_id,
                                      int k) {
  const std::uint32_t c =
      pick_in_bucket(net, ring, m_id, k, bucket_top(net.space(), k),
                     BucketChoice::kClosest, nullptr);
  if (c == RingView::kNone) return kNoLimit;
  return net.space().xor_distance(m_id, net.id(c));
}

std::uint64_t closest_xor_distance(const OverlayNetwork& net,
                                   const RingView& ring, std::uint32_t m) {
  // The XOR-closest member lies in the lowest non-empty bucket.
  for (int k = 0; k < net.space().bits(); ++k) {
    const std::uint64_t d = bucket_closest_distance(net, ring, net.id(m), k);
    if (d != kNoLimit) return d;
  }
  return kNoLimit;
}

void add_kademlia_links(const OverlayNetwork& net, const RingView& ring,
                        std::uint32_t m, const RingView* child,
                        BucketChoice choice, MergePolicy policy, Rng& rng,
                        LinkTable& out, int replication) {
  if (replication < 1) {
    throw std::invalid_argument("add_kademlia_links: replication < 1");
  }
  const IdSpace& space = net.space();
  const NodeId m_id = net.id(m);
  for (int k = 0; k < space.bits(); ++k) {
    std::uint64_t hi = bucket_top(space, k);
    if (child != nullptr) {
      const std::uint64_t child_d =
          bucket_closest_distance(net, *child, m_id, k);
      if (policy == MergePolicy::kFrugal) {
        // The child ring already covers this bucket: no merge link.
        if (child_d != kNoLimit) continue;
      } else {
        // Literal rule: candidates must be strictly closer than every
        // child-ring node within this bucket.
        hi = std::min(hi, child_d);
      }
    }
    const std::uint32_t v =
        pick_in_bucket(net, ring, m_id, k, hi, choice, &rng);
    if (v == RingView::kNone || v == m) continue;
    out.add(m, v);
    // Extra bucket entries for resilience (LinkTable collapses repeats, so
    // small buckets simply fill up).
    for (int extra = 1; extra < replication; ++extra) {
      const std::uint32_t w =
          pick_in_bucket(net, ring, m_id, k, hi, BucketChoice::kRandom, &rng);
      if (w != RingView::kNone && w != m) out.add(m, w);
    }
  }
}

LinkTable build_kademlia(const OverlayNetwork& net, BucketChoice choice,
                         Rng& rng, int replication) {
  telemetry::ScopedTimer timer("build.kademlia_ms");
  LinkTable out(net.size());
  const RingView ring = net.ring();
  // Per-node forked RNG streams (see build_symphony): deterministic at any
  // thread count.
  const Rng base = rng;
  parallel_for(net.size(), kNodeGrain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t m = begin; m < end; ++m) {
      Rng node_rng = base.fork(m);
      add_kademlia_links(net, ring, static_cast<std::uint32_t>(m),
                         /*child=*/nullptr, choice, MergePolicy::kFrugal,
                         node_rng, out, replication);
    }
  });
  out.finalize(net.ids());
  return out;
}

}  // namespace canon
