// Chord link construction (Stoica et al., SIGCOMM 2001), in both the flat
// form and the restricted per-ring form that Canon's Crescendo construction
// applies bottom-up (Section 2.1 of the paper).
#ifndef CANON_DHT_CHORD_H
#define CANON_DHT_CHORD_H

#include <cstdint>
#include <limits>

#include "overlay/link_table.h"
#include "overlay/overlay_network.h"

namespace canon {

/// Sentinel distance limit meaning "no restriction".
inline constexpr std::uint64_t kNoLimit =
    std::numeric_limits<std::uint64_t>::max();

/// Adds node `m`'s Chord finger links over the members of `ring`: for each
/// 0 <= k < N, the closest member at ring distance >= 2^k (condition (a) of
/// the paper), keeping only links with ring distance strictly below `limit`
/// (condition (b); pass kNoLimit for plain Chord).
void add_chord_fingers(const OverlayNetwork& net, const RingView& ring,
                       std::uint32_t m, std::uint64_t limit, LinkTable& out);

/// Builds the complete flat Chord network over all nodes.
LinkTable build_chord(const OverlayNetwork& net);

}  // namespace canon

#endif  // CANON_DHT_CHORD_H
