#include "dht/symphony.h"

#include "common/parallel.h"
#include "telemetry/scoped_timer.h"

#include <cmath>
#include <limits>

namespace canon {

void add_symphony_links(const OverlayNetwork& net, const RingView& ring,
                        std::uint32_t m, std::uint64_t limit, int draws,
                        Rng& rng, LinkTable& out) {
  const IdSpace& space = net.space();
  const NodeId mid = net.id(m);
  const std::size_t n = ring.size();
  if (n <= 1) return;

  // Successor link, required for routing completeness.
  const std::uint64_t succ_dist = ring.successor_distance(mid);
  if (succ_dist < limit) out.add(m, ring.first_at_distance(mid, 1));

  if (draws < 0) draws = floor_log2(n);
  for (int i = 0; i < draws; ++i) {
    // Harmonic draw: x = n^(u-1) is distributed with pdf 1/(x ln n) on
    // [1/n, 1]; the link spans fraction x of the ring.
    const double u = rng.uniform_double();
    const double x = std::pow(static_cast<double>(n), u - 1.0);
    const std::uint64_t dist =
        static_cast<std::uint64_t>(x * space.size());
    if (dist == 0) continue;
    // Link to the manager of the drawn point.
    const std::uint32_t v =
        ring.predecessor_or_self(space.advance(mid, dist));
    if (v == m) continue;
    if (space.ring_distance(mid, net.id(v)) < limit) out.add(m, v);
  }
}

LinkTable build_symphony(const OverlayNetwork& net, Rng& rng) {
  telemetry::ScopedTimer timer("build.symphony_ms");
  LinkTable out(net.size());
  const RingView ring = net.ring();
  // Per-node RNG streams forked from the caller's generator: node m draws
  // from base.fork(m) regardless of visit order, so serial and sharded
  // builds produce byte-identical tables.
  const Rng base = rng;
  parallel_for(net.size(), kNodeGrain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t m = begin; m < end; ++m) {
      Rng node_rng = base.fork(m);
      add_symphony_links(net, ring, static_cast<std::uint32_t>(m), kNoLimit,
                         /*draws=*/-1, node_rng, out);
    }
  });
  out.finalize(net.ids());
  return out;
}

}  // namespace canon
