// Kademlia (Maymounkov & Mazieres, IPTPS 2002): XOR-metric buckets. For
// each 0 <= k < N a node links to a node at XOR distance in [2^k, 2^{k+1})
// (the paper ignores Kademlia's per-bucket replication, as we do).
//
// Kandy (Section 3.3) applies the same rule per hierarchy level with the
// nondeterministic-choice caveat of Section 3.2 translated to buckets: when
// rings merge, a node may pick a bucket-k candidate only among nodes
// strictly closer than every node of its own child ring *within that
// bucket*. (A candidate in a bucket that is empty in the child ring is
// always admissible; this keeps every domain's members Kademlia-complete
// among themselves — the invariant hierarchical greedy XOR routing needs —
// while adding no links for buckets the child ring already covers.)
#ifndef CANON_DHT_KADEMLIA_H
#define CANON_DHT_KADEMLIA_H

#include <cstdint>

#include "common/rng.h"
#include "dht/chord.h"
#include "overlay/link_table.h"
#include "overlay/overlay_network.h"

namespace canon {

/// How to resolve Kademlia's nondeterministic per-bucket choice.
enum class BucketChoice {
  kClosest,  ///< XOR-closest member of the bucket (deterministic)
  kRandom,   ///< uniformly random member of the bucket
};

/// How the Canon merge treats a bucket the child ring already covers.
enum class MergePolicy {
  /// Take a merge link only when the child ring's bucket is empty. Keeps
  /// the degree at the flat-Kademlia level (matching the paper's headline
  /// degree claims) while preserving per-domain bucket completeness.
  kFrugal,
  /// The literal Section 3.3 rule: also take a candidate strictly closer
  /// than the child ring's best in the bucket. Extra links per level,
  /// slightly shorter XOR paths.
  kLiteral,
};

/// Adds node `m`'s Kademlia bucket links over `ring`. If `child` is
/// non-null (a sub-ring containing m), buckets are filtered per
/// `MergePolicy` (see above). `replication` > 1 keeps up to that many
/// links per bucket (real Kademlia's k-buckets, which the paper sets aside
/// "for resilience"): the primary link follows `choice`, the extras are
/// random distinct bucket members.
void add_kademlia_links(const OverlayNetwork& net, const RingView& ring,
                        std::uint32_t m, const RingView* child,
                        BucketChoice choice, MergePolicy policy, Rng& rng,
                        LinkTable& out, int replication = 1);

/// XOR distance from `m` to its closest other member of `ring`
/// (kNoLimit if `ring` holds only m).
std::uint64_t closest_xor_distance(const OverlayNetwork& net,
                                   const RingView& ring, std::uint32_t m);

/// XOR distance from id `m_id` to the closest member of `ring` within the
/// bucket [2^k, 2^{k+1}), or kNoLimit if that bucket is empty.
std::uint64_t bucket_closest_distance(const OverlayNetwork& net,
                                      const RingView& ring, NodeId m_id,
                                      int k);

/// Builds the complete flat Kademlia network.
LinkTable build_kademlia(const OverlayNetwork& net, BucketChoice choice,
                         Rng& rng, int replication = 1);

}  // namespace canon

#endif  // CANON_DHT_KADEMLIA_H
