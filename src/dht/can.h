// Binary-prefix-tree CAN (Section 3.4 of the paper).
//
// The paper generalizes CAN to a logarithmic-degree network whose node
// identifiers form a binary prefix tree: the path from the root to a leaf
// is a node's zone. Shorter IDs act as multiple virtual (padded) nodes, and
// edges are hypercube edges between virtual nodes (equivalently: zones
// adjacent across a one-bit prefix flip). Routing is left-to-right bit
// fixing on zone prefixes.
//
// Zone partition: the binary trie of the member IDs. Every member's
// *primary* zone is its shortest unique prefix, which always contains its
// own ID. Trie branches with members on only one side leave the empty
// sibling block uncovered; such blocks are assigned to the boundary member
// of the populated side (the classic CAN situation of a node owning more
// than one zone). The partition is a deterministic function of the member
// set, which dynamic-maintenance tests rely on.
#ifndef CANON_DHT_CAN_H
#define CANON_DHT_CAN_H

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "overlay/fault_plan.h"
#include "overlay/link_table.h"
#include "overlay/overlay_network.h"
#include "overlay/routing.h"

namespace canon {

/// The CAN zone partition for one member set (see file comment).
class ZoneTree {
 public:
  /// Builds the partition for `members` (node indices sorted by ascending
  /// ID — domain member lists already are).
  ZoneTree(const OverlayNetwork& net, std::span<const std::uint32_t> members);

  struct Zone {
    NodeId prefix = 0;  ///< block start (aligned): top `len` bits meaningful
    int len = 0;        ///< prefix length in bits (0 = whole space)
  };

  std::size_t member_count() const { return primary_leaf_.size(); }
  bool contains(std::uint32_t node) const {
    return primary_leaf_.contains(node);
  }

  /// The primary zone of `node`: its shortest unique prefix among the
  /// members. Always contains the node's own ID.
  Zone zone(std::uint32_t node) const;

  /// Every zone owned by `node` (primary first).
  std::vector<Zone> zones_of(std::uint32_t node) const;

  /// The member owning the zone containing `point`.
  std::uint32_t owner_of(NodeId point) const;

  /// Owners of all zones adjacent to `node`'s *primary* zone across the
  /// face at prefix position `pos` (0 = most significant;
  /// pos < zone(node).len). Appends to `out`.
  void face_neighbors(std::uint32_t node, int pos,
                      std::vector<std::uint32_t>& out) const;

  /// All distinct CAN neighbors of `node`: every face of every owned zone,
  /// deduplicated, excluding `node` itself.
  std::vector<std::uint32_t> neighbors(std::uint32_t node) const;

  /// Longest prefix match between `key` and any zone owned by `node`
  /// (each zone's match is capped at its own length). Equals the zone
  /// length of the key's containing zone iff node owns the key.
  int match_len(std::uint32_t node, NodeId key) const;

 private:
  struct TrieNode {
    int child[2] = {-1, -1};  ///< -1 on a leaf
    std::uint32_t owner = 0;  ///< valid on leaves
    bool is_leaf = true;
    Zone block;
  };

  int build(std::span<const std::uint32_t> members, std::size_t lo,
            std::size_t hi, NodeId prefix, int len);
  int make_leaf(std::uint32_t owner, NodeId prefix, int len);
  int leaf_containing(NodeId point) const;
  void collect_leaf_owners(int trie_node, std::vector<std::uint32_t>& out) const;
  void block_owners(NodeId prefix, int len,
                    std::vector<std::uint32_t>& out) const;

  const OverlayNetwork* net_;
  std::vector<TrieNode> trie_;
  std::unordered_map<std::uint32_t, int> primary_leaf_;
  std::unordered_map<std::uint32_t, std::vector<int>> leaves_of_;
};

/// Builds the flat logarithmic-degree CAN network over all nodes.
/// The returned tree is needed for routing (CanRouter).
struct CanNetwork {
  ZoneTree tree;
  LinkTable links;
};
CanNetwork build_can(const OverlayNetwork& net);

/// Greedy bit-fixing router over a CAN zone partition: each hop moves to
/// the neighbor with the longest zone-prefix match with the key; a final
/// hop to a neighbor owning the key is taken when prefix matches cannot
/// grow (the key's zone may be a short empty-sibling block). Terminates at
/// the owner of the key's zone.
class CanRouter {
 public:
  CanRouter(const OverlayNetwork& net, const ZoneTree& tree,
            const LinkTable& links);

  Route route(std::uint32_t from, NodeId key) const;

 private:
  const OverlayNetwork* net_;
  const ZoneTree* tree_;
  const LinkTable* links_;
  int max_hops_;
};

/// Failure-aware CAN routing: the plain bit-fixing walk over live
/// neighbors, with two recovery mechanisms. (1) Zone takeover: when the
/// key's owner is dead, the live member XOR-closest to the key is the
/// target (CAN's neighbor-takeover rule collapsed onto a static
/// simulation). (2) Live-face fallback: when no live neighbor grows the
/// prefix match, the query sidesteps to an unvisited live neighbor
/// strictly XOR-closer to the key. Dropped forwarding attempts retry the
/// next candidate, up to `retry_budget` per hop. Follows the hot-path
/// contract of overlay/routing.h (no telemetry, shareable const state).
class ResilientCanRouter {
 public:
  ResilientCanRouter(const OverlayNetwork& net, const ZoneTree& tree,
                     const LinkTable& links, int retry_budget = kRetryBudget);

  struct Scratch {
    std::vector<std::uint32_t> banned;   ///< candidates dropped this hop
    std::vector<std::uint32_t> visited;  ///< fallback cycle guard
  };

  /// ok iff the terminal is the key's live owner (see live_owner). Throws
  /// std::invalid_argument on a dead source.
  ResilientProbe route_into(std::uint32_t from, NodeId key,
                            const FailureSet& dead, DropRoller& drops,
                            Scratch& scratch, Route& out) const;
  ResilientProbe probe(std::uint32_t from, NodeId key, const FailureSet& dead,
                       DropRoller& drops, Scratch& scratch) const;

  /// The key's zone owner, or — when it is dead — the live member
  /// XOR-closest to the key (the takeover rule).
  std::uint32_t live_owner(NodeId key, const FailureSet& dead) const;

 private:
  template <typename Recorder>
  ResilientProbe core(std::uint32_t from, NodeId key, const FailureSet& dead,
                      DropRoller& drops, Scratch& scratch,
                      Recorder&& record) const;

  const OverlayNetwork* net_;
  const ZoneTree* tree_;
  const LinkTable* links_;
  int retry_budget_;
  int max_hops_;
};

}  // namespace canon

#endif  // CANON_DHT_CAN_H
