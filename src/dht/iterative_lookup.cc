#include "dht/iterative_lookup.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "telemetry/metrics.h"

namespace canon {

IterativeLookupResult iterative_lookup(const OverlayNetwork& net,
                                       const LinkTable& links,
                                       std::uint32_t from, NodeId key,
                                       const IterativeLookupConfig& config,
                                       telemetry::RouteTraceSink* trace) {
  if (config.alpha < 1 || config.shortlist_size < 1) {
    throw std::invalid_argument("iterative_lookup: bad config");
  }
  telemetry::Counter* lookups_counter =
      telemetry::maybe_counter("iterative_lookup.lookups");
  telemetry::Counter* messages_counter =
      telemetry::maybe_counter("iterative_lookup.messages");
  const std::uint64_t trace_id = trace ? trace->begin_lookup(from, key) : 0;
  const IdSpace& space = net.space();
  const auto closer = [&](std::uint32_t a, std::uint32_t b) {
    return space.xor_distance(net.id(a), key) <
           space.xor_distance(net.id(b), key);
  };

  IterativeLookupResult result;
  std::vector<std::uint32_t> shortlist = {from};
  std::unordered_set<std::uint32_t> known = {from};
  std::unordered_set<std::uint32_t> queried;

  for (;;) {
    // Pick up to alpha closest unqueried shortlist members.
    std::vector<std::uint32_t> batch;
    for (const std::uint32_t c : shortlist) {
      if (!queried.contains(c)) {
        batch.push_back(c);
        if (static_cast<int>(batch.size()) == config.alpha) break;
      }
    }
    if (batch.empty()) break;  // converged
    for (const std::uint32_t q : batch) {
      queried.insert(q);
      result.queried.push_back(q);
      ++result.messages;
      const auto neighbors = links.neighbors(q);
      if (trace) {
        telemetry::HopRecord hop;
        hop.lookup = trace_id;
        hop.from = from;
        hop.to = q;
        hop.hop_index = result.messages - 1;
        hop.level = net.lca_level(from, q);
        hop.candidates = static_cast<std::uint32_t>(neighbors.size());
        trace->on_hop(hop);
      }
      for (const std::uint32_t nb : neighbors) {
        if (known.insert(nb).second) shortlist.push_back(nb);
      }
    }
    std::sort(shortlist.begin(), shortlist.end(), closer);
    if (shortlist.size() > static_cast<std::size_t>(config.shortlist_size)) {
      shortlist.resize(static_cast<std::size_t>(config.shortlist_size));
    }
  }

  result.closest = shortlist.front();
  result.ok = (result.closest == net.xor_closest(key));
  if (lookups_counter) {
    lookups_counter->inc();
    messages_counter->inc(static_cast<std::uint64_t>(result.messages));
  }
  if (trace) trace->end_lookup(trace_id, result.ok, result.closest);
  return result;
}

}  // namespace canon
