// Nondeterministic Chord (CFS [4] / Gummadi et al. [5]): for each k, a node
// links to an arbitrary node at ring distance within [2^k, 2^{k+1}) instead
// of the closest node at distance >= 2^k. Section 3.2 of the paper restricts
// the nondeterministic choice to distances below the own-ring successor
// distance when rings are merged; `limit` expresses that restriction.
#ifndef CANON_DHT_NONDET_CHORD_H
#define CANON_DHT_NONDET_CHORD_H

#include <cstdint>

#include "common/rng.h"
#include "dht/chord.h"
#include "overlay/link_table.h"
#include "overlay/overlay_network.h"

namespace canon {

/// Adds node `m`'s nondeterministic-Chord links over `ring`: for each k, a
/// uniformly random member at ring distance in [2^k, min(2^{k+1}, limit)).
/// Always links the successor within `ring` when it is inside `limit`, so
/// greedy clockwise routing stays complete.
void add_nondet_chord_links(const OverlayNetwork& net, const RingView& ring,
                            std::uint32_t m, std::uint64_t limit, Rng& rng,
                            LinkTable& out);

/// Builds the complete flat nondeterministic Chord network.
LinkTable build_nondet_chord(const OverlayNetwork& net, Rng& rng);

}  // namespace canon

#endif  // CANON_DHT_NONDET_CHORD_H
