// Kademlia's iterative node lookup (Maymounkov & Mazieres, Section 2.3 of
// their paper): instead of forwarding a message hop by hop, the querier
// keeps a shortlist of the closest nodes seen, repeatedly asks the closest
// unqueried ones for *their* neighbors (FIND_NODE), and stops when the
// shortlist no longer improves. Unlike pure greedy forwarding the querier
// can sidestep local minima, which matters for Kandy's filtered tables.
//
// This simulates the protocol at message granularity: every FIND_NODE
// issued is counted, and the result reports whether the true XOR-closest
// node to the key was found.
#ifndef CANON_DHT_ITERATIVE_LOOKUP_H
#define CANON_DHT_ITERATIVE_LOOKUP_H

#include <cstdint>
#include <vector>

#include "overlay/link_table.h"
#include "overlay/overlay_network.h"
#include "telemetry/trace.h"

namespace canon {

struct IterativeLookupResult {
  std::uint32_t closest = 0;  ///< best node found
  bool ok = false;            ///< closest == global XOR-closest to the key
  int messages = 0;           ///< FIND_NODE queries issued
  std::vector<std::uint32_t> queried;  ///< nodes contacted, in order
};

struct IterativeLookupConfig {
  int alpha = 3;          ///< concurrent queries per round
  int shortlist_size = 8; ///< Kademlia's k: candidates kept
};

/// Runs one iterative lookup for `key` starting from node `from`.
///
/// With a `trace` sink attached, every FIND_NODE message is reported as a
/// hop from the querier to the contacted node (level = their LCA depth,
/// candidates = neighbors returned), so per-level message breakdowns work
/// the same way as for the forwarding routers.
IterativeLookupResult iterative_lookup(const OverlayNetwork& net,
                                       const LinkTable& links,
                                       std::uint32_t from, NodeId key,
                                       const IterativeLookupConfig& config = {},
                                       telemetry::RouteTraceSink* trace =
                                           nullptr);

}  // namespace canon

#endif  // CANON_DHT_ITERATIVE_LOOKUP_H
