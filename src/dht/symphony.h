// Symphony (Manku, Bawa, Raghavan; USITS 2003): each node draws
// floor(log2 n) long links with harmonic distance distribution
// p(x) ~ 1/(x ln n) over ring fractions x in [1/n, 1], plus a successor
// link. Section 3.1 of the paper builds Cacophony by running the same draw
// per hierarchy level and keeping only links closer than the lower-level
// successor.
#ifndef CANON_DHT_SYMPHONY_H
#define CANON_DHT_SYMPHONY_H

#include <cstdint>

#include "common/rng.h"
#include "dht/chord.h"
#include "overlay/link_table.h"
#include "overlay/overlay_network.h"

namespace canon {

/// Adds node `m`'s Symphony links over `ring`: `draws` harmonic-distance
/// draws (targets resolved to the manager of the drawn point), keeping only
/// links with ring distance in (0, limit); plus the successor within `ring`
/// when closer than `limit`. If `draws` is negative, floor(log2(ring size))
/// draws are used.
void add_symphony_links(const OverlayNetwork& net, const RingView& ring,
                        std::uint32_t m, std::uint64_t limit, int draws,
                        Rng& rng, LinkTable& out);

/// Builds the complete flat Symphony network.
LinkTable build_symphony(const OverlayNetwork& net, Rng& rng);

}  // namespace canon

#endif  // CANON_DHT_SYMPHONY_H
