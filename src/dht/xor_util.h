// XOR-metric range utilities shared by the Kademlia/CAN families.
//
// The set {x : xor(center, x) < radius} (an "XOR ball") is a union of at
// most `bits` aligned, contiguous ID ranges — one per set bit of `radius`.
// Decomposing it lets bucket queries with a Canon distance limit run as a
// handful of binary searches over ID-sorted member lists.
#ifndef CANON_DHT_XOR_UTIL_H
#define CANON_DHT_XOR_UTIL_H

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "overlay/overlay_network.h"

namespace canon {

struct IdRange {
  NodeId lo = 0;           ///< inclusive start (aligned to `size`)
  std::uint64_t size = 0;  ///< power of two
};

/// Aligned ranges covering {x in [0,2^bits) : xor(center, x) < radius}.
/// `radius` is clamped to the space size; radius 0 yields no ranges.
std::vector<IdRange> xor_ball_ranges(NodeId center, std::uint64_t radius,
                                     const IdSpace& space);

/// The member of `ring` inside [lo, lo+size) minimizing XOR distance to
/// `key`, or RingView::kNone if the range holds no member. The range must
/// be aligned (lo % size == 0) and size a power of two.
std::uint32_t xor_closest_in_range(const RingView& ring, NodeId lo,
                                   std::uint64_t size, NodeId key);

}  // namespace canon

#endif  // CANON_DHT_XOR_UTIL_H
