#include "dht/chord.h"

#include "common/parallel.h"
#include "telemetry/scoped_timer.h"

namespace canon {

void add_chord_fingers(const OverlayNetwork& net, const RingView& ring,
                       std::uint32_t m, std::uint64_t limit, LinkTable& out) {
  const IdSpace& space = net.space();
  const NodeId mid = net.id(m);
  for (int k = 0; k < space.bits(); ++k) {
    const std::uint64_t dist = std::uint64_t{1} << k;
    if (dist >= limit) break;  // all further fingers are at least this far
    const std::uint32_t v = ring.first_at_distance(mid, dist);
    if (v == RingView::kNone || v == m) continue;
    if (space.ring_distance(mid, net.id(v)) < limit) out.add(m, v);
  }
}

LinkTable build_chord(const OverlayNetwork& net) {
  telemetry::ScopedTimer timer("build.chord_ms");
  LinkTable out(net.size());
  const RingView ring = net.ring();
  parallel_for(net.size(), kNodeGrain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t m = begin; m < end; ++m) {
      add_chord_fingers(net, ring, static_cast<std::uint32_t>(m), kNoLimit,
                        out);
    }
  });
  out.finalize(net.ids());
  return out;
}

}  // namespace canon
