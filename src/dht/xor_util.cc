#include "dht/xor_util.h"

#include <stdexcept>

namespace canon {

std::vector<IdRange> xor_ball_ranges(NodeId center, std::uint64_t radius,
                                     const IdSpace& space) {
  std::vector<IdRange> ranges;
  if (radius == 0) return ranges;
  // Clamp: a radius covering the whole space is the single full range.
  if (space.bits() < 64 && radius >= (std::uint64_t{1} << space.bits())) {
    ranges.push_back(IdRange{0, std::uint64_t{1} << space.bits()});
    return ranges;
  }
  center = space.wrap(center);
  // One aligned block per set bit b of `radius`: distances d that agree with
  // radius above bit b and have bit b clear; the low b bits of x are free.
  for (int b = space.bits() - 1; b >= 0; --b) {
    if (!((radius >> b) & 1)) continue;
    const std::uint64_t low_mask = (std::uint64_t{1} << b) - 1;
    const std::uint64_t d_fixed =
        radius & ~(low_mask | (std::uint64_t{1} << b));
    const NodeId lo = (center ^ d_fixed) & ~low_mask;
    ranges.push_back(IdRange{space.wrap(lo), std::uint64_t{1} << b});
  }
  return ranges;
}

std::uint32_t xor_closest_in_range(const RingView& ring, NodeId lo,
                                   std::uint64_t size, NodeId key) {
  if (size == 0 || (size & (size - 1)) != 0 || (lo % size) != 0) {
    throw std::invalid_argument("xor_closest_in_range: unaligned range");
  }
  const std::size_t count = ring.count_in(lo, size);
  if (count == 0) return RingView::kNone;
  // Aligned ranges never wrap in ID space, so the candidates occupy the
  // contiguous positions [lo_idx, hi_idx).
  std::size_t lo_idx = ring.successor_pos(lo);
  std::size_t hi_idx = lo_idx + count;

  // Descend bit by bit, preferring the half whose bit matches the key.
  std::uint64_t half = size >> 1;
  NodeId prefix = lo;
  while (half > 0 && hi_idx - lo_idx > 1) {
    const NodeId split = prefix | half;
    // Position of the first member >= split; successor_pos wraps to 0 when
    // every member is below split, in which case the upper half is empty.
    std::size_t mid = ring.successor_pos(split);
    if (mid < lo_idx || mid > hi_idx) mid = hi_idx;
    const bool prefer_high = (key & half) != 0;
    const bool high_nonempty = mid < hi_idx;
    const bool low_nonempty = lo_idx < mid;
    if (prefer_high ? high_nonempty : !low_nonempty) {
      lo_idx = mid;
      prefix = split;
    } else {
      hi_idx = mid;
    }
    half >>= 1;
  }
  return ring.at(lo_idx);
}

}  // namespace canon
