#include "dht/nondet_chord.h"

#include "common/parallel.h"
#include "telemetry/scoped_timer.h"

#include <algorithm>

namespace canon {

void add_nondet_chord_links(const OverlayNetwork& net, const RingView& ring,
                            std::uint32_t m, std::uint64_t limit, Rng& rng,
                            LinkTable& out) {
  const IdSpace& space = net.space();
  const NodeId mid = net.id(m);

  // Successor link (distance >= 1), required for routing completeness.
  const std::uint64_t succ_dist = ring.successor_distance(mid);
  if (succ_dist < limit &&
      succ_dist != std::numeric_limits<std::uint64_t>::max()) {
    out.add(m, ring.first_at_distance(mid, 1));
  }

  for (int k = 0; k < space.bits(); ++k) {
    const std::uint64_t lo_dist = std::uint64_t{1} << k;
    if (lo_dist >= limit) break;
    const std::uint64_t hi_dist =
        std::min(limit, k + 1 >= space.bits()
                            ? (space.mask() + (space.bits() == 64 ? 0 : 1))
                            : (std::uint64_t{1} << (k + 1)));
    if (hi_dist <= lo_dist) continue;
    const NodeId start = space.advance(mid, lo_dist);
    const std::size_t count = ring.count_in(start, hi_dist - lo_dist);
    if (count == 0) continue;
    out.add(m, ring.select_in(start, hi_dist - lo_dist, rng.uniform(count)));
  }
}

LinkTable build_nondet_chord(const OverlayNetwork& net, Rng& rng) {
  telemetry::ScopedTimer timer("build.nondet_chord_ms");
  LinkTable out(net.size());
  const RingView ring = net.ring();
  // Per-node forked RNG streams (see build_symphony): deterministic at any
  // thread count.
  const Rng base = rng;
  parallel_for(net.size(), kNodeGrain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t m = begin; m < end; ++m) {
      Rng node_rng = base.fork(m);
      add_nondet_chord_links(net, ring, static_cast<std::uint32_t>(m),
                             kNoLimit, node_rng, out);
    }
  });
  out.finalize(net.ids());
  return out;
}

}  // namespace canon
