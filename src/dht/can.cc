#include "dht/can.h"

#include <algorithm>
#include <stdexcept>

#include "common/parallel.h"
#include "telemetry/scoped_timer.h"

namespace canon {

namespace {

/// Bit of `id` at prefix position `pos` (0 = most significant of the space).
int bit_at(NodeId id, int pos, int bits) {
  return static_cast<int>((id >> (bits - 1 - pos)) & 1);
}

}  // namespace

ZoneTree::ZoneTree(const OverlayNetwork& net,
                   std::span<const std::uint32_t> members)
    : net_(&net) {
  if (members.empty()) throw std::invalid_argument("ZoneTree: no members");
  for (std::size_t i = 1; i < members.size(); ++i) {
    if (net.id(members[i - 1]) >= net.id(members[i])) {
      throw std::invalid_argument("ZoneTree: members must be ID-sorted");
    }
  }
  build(members, 0, members.size(), 0, 0);
}

int ZoneTree::make_leaf(std::uint32_t owner, NodeId prefix, int len) {
  const int idx = static_cast<int>(trie_.size());
  trie_.push_back(TrieNode{{-1, -1}, owner, true, Zone{prefix, len}});
  leaves_of_[owner].push_back(idx);
  // The primary leaf is the one containing the owner's own ID.
  const int bits = net_->space().bits();
  const NodeId id = net_->id(owner);
  if (len == 0 || (id >> (bits - len)) == (prefix >> (bits - len))) {
    primary_leaf_[owner] = idx;
  }
  return idx;
}

int ZoneTree::build(std::span<const std::uint32_t> members, std::size_t lo,
                    std::size_t hi, NodeId prefix, int len) {
  const int bits = net_->space().bits();
  if (hi - lo == 1) return make_leaf(members[lo], prefix, len);
  if (len >= bits) throw std::logic_error("ZoneTree: duplicate IDs");

  // Split the ID-sorted span at the first member whose bit `len` is 1.
  const NodeId half = NodeId{1} << (bits - 1 - len);
  const NodeId split_id = prefix | half;
  std::size_t mid = lo;
  while (mid < hi && net_->id(members[mid]) < split_id) ++mid;

  const int idx = static_cast<int>(trie_.size());
  trie_.push_back(TrieNode{{-1, -1}, 0, false, Zone{prefix, len}});
  int left;
  int right;
  if (mid == lo) {
    // Left half empty: owned by the boundary member (smallest ID on the
    // populated side), the member "closest across" the empty block.
    left = make_leaf(members[lo], prefix, len + 1);
    right = build(members, lo, hi, split_id, len + 1);
  } else if (mid == hi) {
    right = make_leaf(members[hi - 1], split_id, len + 1);
    left = build(members, lo, hi, prefix, len + 1);
  } else {
    left = build(members, lo, mid, prefix, len + 1);
    right = build(members, mid, hi, split_id, len + 1);
  }
  trie_[static_cast<std::size_t>(idx)].child[0] = left;
  trie_[static_cast<std::size_t>(idx)].child[1] = right;
  return idx;
}

int ZoneTree::leaf_containing(NodeId point) const {
  const int bits = net_->space().bits();
  int cur = 0;
  int depth = 0;
  while (!trie_[static_cast<std::size_t>(cur)].is_leaf) {
    cur = trie_[static_cast<std::size_t>(cur)].child[bit_at(point, depth,
                                                            bits)];
    ++depth;
  }
  return cur;
}

ZoneTree::Zone ZoneTree::zone(std::uint32_t node) const {
  const auto it = primary_leaf_.find(node);
  if (it == primary_leaf_.end()) {
    throw std::invalid_argument("ZoneTree::zone: not a member");
  }
  return trie_[static_cast<std::size_t>(it->second)].block;
}

std::vector<ZoneTree::Zone> ZoneTree::zones_of(std::uint32_t node) const {
  const auto it = leaves_of_.find(node);
  if (it == leaves_of_.end()) {
    throw std::invalid_argument("ZoneTree::zones_of: not a member");
  }
  std::vector<Zone> out;
  out.reserve(it->second.size());
  out.push_back(zone(node));
  const int primary = primary_leaf_.at(node);
  for (const int leaf : it->second) {
    if (leaf != primary) {
      out.push_back(trie_[static_cast<std::size_t>(leaf)].block);
    }
  }
  return out;
}

std::uint32_t ZoneTree::owner_of(NodeId point) const {
  return trie_[static_cast<std::size_t>(leaf_containing(point))].owner;
}

void ZoneTree::collect_leaf_owners(int trie_node,
                                   std::vector<std::uint32_t>& out) const {
  const TrieNode& t = trie_[static_cast<std::size_t>(trie_node)];
  if (t.is_leaf) {
    out.push_back(t.owner);
    return;
  }
  collect_leaf_owners(t.child[0], out);
  collect_leaf_owners(t.child[1], out);
}

void ZoneTree::block_owners(NodeId prefix, int len,
                            std::vector<std::uint32_t>& out) const {
  // Descend along `prefix`; stopping early at a leaf means one larger zone
  // covers the whole block.
  const int bits = net_->space().bits();
  int cur = 0;
  int depth = 0;
  while (depth < len && !trie_[static_cast<std::size_t>(cur)].is_leaf) {
    cur = trie_[static_cast<std::size_t>(cur)].child[bit_at(prefix, depth,
                                                            bits)];
    ++depth;
  }
  collect_leaf_owners(cur, out);
}

void ZoneTree::face_neighbors(std::uint32_t node, int pos,
                              std::vector<std::uint32_t>& out) const {
  const Zone z = zone(node);
  if (pos < 0 || pos >= z.len) {
    throw std::out_of_range("ZoneTree::face_neighbors: bad face position");
  }
  const int bits = net_->space().bits();
  block_owners(z.prefix ^ (NodeId{1} << (bits - 1 - pos)), z.len, out);
}

std::vector<std::uint32_t> ZoneTree::neighbors(std::uint32_t node) const {
  std::vector<std::uint32_t> out;
  const int bits = net_->space().bits();
  for (const Zone& z : zones_of(node)) {
    for (int pos = 0; pos < z.len; ++pos) {
      block_owners(z.prefix ^ (NodeId{1} << (bits - 1 - pos)), z.len, out);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  out.erase(std::remove(out.begin(), out.end(), node), out.end());
  return out;
}

int ZoneTree::match_len(std::uint32_t node, NodeId key) const {
  const auto it = leaves_of_.find(node);
  if (it == leaves_of_.end()) {
    throw std::invalid_argument("ZoneTree::match_len: not a member");
  }
  const int bits = net_->space().bits();
  int best = 0;
  for (const int leaf : it->second) {
    const Zone& z = trie_[static_cast<std::size_t>(leaf)].block;
    const NodeId diff = (z.prefix ^ key) & net_->space().mask();
    const int m =
        diff == 0 ? z.len : std::min(bits - 1 - floor_log2(diff), z.len);
    best = std::max(best, m);
  }
  return best;
}

CanNetwork build_can(const OverlayNetwork& net) {
  telemetry::ScopedTimer timer("build.can_ms");
  const RingView ring = net.ring();
  ZoneTree tree(net, ring.members());
  LinkTable links(net.size());
  const auto members = ring.members();
  parallel_for(members.size(), kNodeGrain,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   const std::uint32_t m = members[i];
                   for (const std::uint32_t v : tree.neighbors(m)) {
                     links.add(m, v);
                   }
                 }
               });
  links.finalize(net.ids());
  return CanNetwork{std::move(tree), std::move(links)};
}

CanRouter::CanRouter(const OverlayNetwork& net, const ZoneTree& tree,
                     const LinkTable& links)
    : net_(&net),
      tree_(&tree),
      links_(&links),
      max_hops_(4 * net.space().bits() + 16) {
  if (!links.finalized()) {
    throw std::invalid_argument("CanRouter: link table not finalized");
  }
}

Route CanRouter::route(std::uint32_t from, NodeId key) const {
  Route r;
  r.path.push_back(from);
  std::uint32_t current = from;
  for (int step = 0; step < max_hops_; ++step) {
    if (tree_->owner_of(key) == current) {
      r.ok = true;
      return r;
    }
    const int cur_match = tree_->match_len(current, key);
    std::uint32_t best = current;
    int best_match = cur_match;
    for (const std::uint32_t nb : links_->neighbors(current)) {
      if (!tree_->contains(nb)) continue;
      const int m = tree_->match_len(nb, key);
      if (m > best_match) {
        best_match = m;
        best = nb;
      }
    }
    if (best == current) {
      // Prefix matches cannot grow, but the key's zone may be a short
      // empty-sibling block owned by an adjacent node: take a final hop to
      // a neighbor that owns the key.
      for (const std::uint32_t nb : links_->neighbors(current)) {
        if (tree_->contains(nb) && tree_->owner_of(key) == nb) {
          best = nb;
          break;
        }
      }
    }
    if (best == current) {
      r.ok = false;  // stuck
      return r;
    }
    current = best;
    r.path.push_back(current);
  }
  r.ok = false;
  return r;
}

namespace {

bool in_list(const std::vector<std::uint32_t>& list, std::uint32_t node) {
  return std::find(list.begin(), list.end(), node) != list.end();
}

struct NullRecorder {
  void operator()(std::uint32_t) const {}
};

struct PathRecorder {
  std::vector<std::uint32_t>* path;
  void operator()(std::uint32_t node) const { path->push_back(node); }
};

}  // namespace

ResilientCanRouter::ResilientCanRouter(const OverlayNetwork& net,
                                       const ZoneTree& tree,
                                       const LinkTable& links,
                                       int retry_budget)
    : net_(&net),
      tree_(&tree),
      links_(&links),
      retry_budget_(retry_budget),
      max_hops_(4 * net.space().bits() + 16) {
  if (!links.finalized()) {
    throw std::invalid_argument("ResilientCanRouter: links not finalized");
  }
  if (retry_budget < 1) {
    throw std::invalid_argument("ResilientCanRouter: retry budget < 1");
  }
}

std::uint32_t ResilientCanRouter::live_owner(NodeId key,
                                             const FailureSet& dead) const {
  const std::uint32_t structural = tree_->owner_of(key);
  if (!dead.dead(structural)) return structural;
  const IdSpace& space = net_->space();
  std::uint32_t best = RingView::kNone;
  std::uint64_t best_d = 0;
  for (std::uint32_t i = 0; i < net_->size(); ++i) {
    if (dead.dead(i) || !tree_->contains(i)) continue;
    const std::uint64_t d = space.xor_distance(net_->id(i), key);
    if (best == RingView::kNone || d < best_d) {
      best = i;
      best_d = d;
    }
  }
  if (best == RingView::kNone) {
    throw std::logic_error("live_owner: everyone is dead");
  }
  return best;
}

template <typename Recorder>
ResilientProbe ResilientCanRouter::core(std::uint32_t from, NodeId key,
                                        const FailureSet& dead,
                                        DropRoller& drops, Scratch& scratch,
                                        Recorder&& record) const {
  if (dead.dead(from)) {
    throw std::invalid_argument("ResilientCanRouter: source is dead");
  }
  const IdSpace& space = net_->space();
  const bool faults = dead.any() || drops.active();
  const std::uint32_t target =
      faults ? live_owner(key, dead) : tree_->owner_of(key);
  std::uint32_t current = from;
  int hops = 0;
  int retries = 0;
  int fallback_hops = 0;
  scratch.visited.clear();
  for (int step = 0; step < max_hops_; ++step) {
    if (current == target) return {current, hops, true, retries, fallback_hops};
    const int cur_match = tree_->match_len(current, key);
    scratch.banned.clear();
    int attempts = retry_budget_;
    for (;;) {  // per-hop retry ladder
      // Stage 1: the plain bit-fixing scan over live, unbanned neighbors.
      std::uint32_t best = current;
      int best_match = cur_match;
      for (const std::uint32_t nb : links_->neighbors(current)) {
        if (!tree_->contains(nb)) continue;
        if (faults && (dead.dead(nb) || in_list(scratch.banned, nb) ||
                       in_list(scratch.visited, nb))) {
          continue;
        }
        const int m = tree_->match_len(nb, key);
        if (m > best_match) {
          best_match = m;
          best = nb;
        }
      }
      if (best == current) {
        // Final hop: a neighbor that is the target itself (the key's zone
        // may be a short empty-sibling block owned by an adjacent node).
        for (const std::uint32_t nb : links_->neighbors(current)) {
          if (!tree_->contains(nb) || nb != target) continue;
          if (faults && in_list(scratch.banned, nb)) continue;
          best = nb;
          break;
        }
      }
      bool via_fallback = false;
      if (best == current && faults) {
        // Stage 2: live-face fallback — an unvisited live neighbor
        // strictly XOR-closer to the key.
        std::uint64_t best_d = space.xor_distance(net_->id(current), key);
        for (const std::uint32_t nb : links_->neighbors(current)) {
          if (!tree_->contains(nb) || dead.dead(nb) ||
              in_list(scratch.banned, nb) || in_list(scratch.visited, nb)) {
            continue;
          }
          const std::uint64_t d = space.xor_distance(net_->id(nb), key);
          if (d < best_d) {
            best_d = d;
            best = nb;
          }
        }
        via_fallback = best != current;
      }
      if (best == current) {
        return {current, hops, false, retries, fallback_hops};  // stuck
      }
      if (drops.drop()) {
        scratch.banned.push_back(best);
        ++retries;
        if (--attempts <= 0) {
          return {current, hops, false, retries, fallback_hops};  // lost
        }
        continue;
      }
      if (via_fallback) ++fallback_hops;
      current = best;
      ++hops;
      record(current);
      if (faults) scratch.visited.push_back(current);
      break;
    }
  }
  return {current, hops, false, retries, fallback_hops};
}

ResilientProbe ResilientCanRouter::route_into(std::uint32_t from, NodeId key,
                                              const FailureSet& dead,
                                              DropRoller& drops,
                                              Scratch& scratch,
                                              Route& out) const {
  out.path.clear();
  out.path.push_back(from);
  out.ok = false;
  const ResilientProbe p =
      core(from, key, dead, drops, scratch, PathRecorder{&out.path});
  out.ok = p.ok;
  return p;
}

ResilientProbe ResilientCanRouter::probe(std::uint32_t from, NodeId key,
                                         const FailureSet& dead,
                                         DropRoller& drops,
                                         Scratch& scratch) const {
  return core(from, key, dead, drops, scratch, NullRecorder{});
}

}  // namespace canon
