// Hierarchical content storage and retrieval (Section 4.1) with proxy-node
// caching (Section 4.2).
//
// A key-value pair inserted by node n carries a *storage domain* (a domain
// containing n in which the pair must physically live) and an *access
// domain* (a superset of the storage domain to whose nodes the content is
// visible). The pair is stored at the storage domain's responsible node
// for the key; if the access domain is larger, a pointer is placed at the
// access domain's responsible node.
//
// A query routes hierarchically (plain greedy); a node on the path answers
// iff it holds matching content whose access domain is no smaller than the
// current routing level (equivalently: the access domain contains the
// query's origin). Pointers are resolved transparently; answers can be
// cached at the proxy node of every origin-side domain on the path, each
// copy annotated with the level it serves (Section 4.2's replacement
// policy preferentially evicts deeper-level copies).
#ifndef CANON_STORAGE_HIERARCHICAL_STORE_H
#define CANON_STORAGE_HIERARCHICAL_STORE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "overlay/link_table.h"
#include "overlay/overlay_network.h"
#include "overlay/resilient_routing.h"
#include "overlay/routing.h"
#include "storage/cache.h"

namespace canon {

/// Where a get() was answered from.
enum class AnswerSource {
  kNotFound,
  kOwner,    ///< the storage domain's responsible node
  kPointer,  ///< a pointer at the access domain's responsible node
  kCache,    ///< a proxy-node cache hit
};

struct GetResult {
  AnswerSource source = AnswerSource::kNotFound;
  std::string value;
  std::uint32_t served_by = 0;  ///< node that produced the answer
  Route route;                  ///< overlay path walked by the query
  int extra_pointer_hops = 0;   ///< round trip for pointer resolution
};

/// A DHT store over a built (ring-metric) Canon network.
class HierarchicalStore {
 public:
  /// `cache_capacity` entries per node; 0 disables caching.
  HierarchicalStore(const OverlayNetwork& net, const LinkTable& links,
                    std::size_t cache_capacity = 0,
                    CachePolicy policy = CachePolicy::kLevelAware);

  /// Stores <key, value> from `origin`. `storage_level` and `access_level`
  /// are hierarchy depths of domains containing origin (0 = root/global);
  /// the access domain must contain the storage domain
  /// (access_level <= storage_level). With `replication` > 1, copies also
  /// go to the holder's replication-1 ring predecessors within the storage
  /// domain — the nodes that inherit the key's range if the holder fails
  /// (under the paper's responsibility rule of footnote 3). Returns the
  /// primary storing node.
  std::uint32_t put(std::uint32_t origin, NodeId key, std::string value,
                    int storage_level, int access_level, int replication = 1);

  /// Removes the pair stored under `key` with the given origin-side levels.
  /// Returns true if something was removed. (Cached copies expire lazily:
  /// they are dropped when encountered.)
  bool erase(std::uint32_t origin, NodeId key, int storage_level,
             int access_level);

  /// Looks `key` up from `origin`, enforcing access control. Populates
  /// proxy caches on the way back when caching is enabled.
  GetResult get(std::uint32_t origin, NodeId key);

  struct MultiGetResult {
    std::vector<std::string> values;
    Route route;
  };

  /// Multi-value lookup (Section 4.1: "if the application requires a
  /// partial list of values ... routing can stop when a sufficient number
  /// of values have been found"). Collects up to `limit` distinct visible
  /// values for `key` along the query path, walking only as far as needed.
  MultiGetResult get_many(std::uint32_t origin, NodeId key,
                          std::size_t limit);

  /// Lookup in the presence of failed nodes: routes with leaf-set fallback
  /// (ResilientRingRouter) and inspects only live nodes. Replicated
  /// content survives the loss of its primary holder, because the live
  /// responsible node (the next live predecessor) already holds a copy.
  GetResult get_resilient(std::uint32_t origin, NodeId key,
                          const FailureSet& failures, int leaf_set = 4);

  /// Total stored pairs (no pointers, no cached copies).
  std::size_t stored_pairs() const;
  /// Total pointer entries.
  std::size_t pointer_entries() const;

  const NodeCache& cache(std::uint32_t node) const { return caches_[node]; }

 private:
  struct Entry {
    NodeId key = 0;
    std::string value;
    int storage_domain = 0;  ///< DomainTree index
    int access_domain = 0;   ///< DomainTree index (ancestor-or-self)
    int access_depth = 0;
  };
  struct Pointer {
    NodeId key = 0;
    std::uint32_t holder = 0;  ///< node storing the actual value
    int access_domain = 0;
    int access_depth = 0;
  };

  /// The responsible node for `key` within domain `d`.
  std::uint32_t responsible_in(int domain, NodeId key) const;
  bool visible(int access_domain, int access_depth,
               std::uint32_t origin) const;
  /// Inspects node `m`'s cache/content/pointers for `key`; fills `result`
  /// and returns true on a hit. `use_cache` gates cache reads.
  bool inspect(std::uint32_t m, NodeId key, std::uint32_t origin,
               bool use_cache, GetResult& result);

  const OverlayNetwork* net_;
  const LinkTable* links_;
  RingRouter router_;
  std::vector<std::vector<Entry>> entries_;    // per node
  std::vector<std::vector<Pointer>> pointers_;  // per node
  std::vector<NodeCache> caches_;
  bool caching_ = false;
};

}  // namespace canon

#endif  // CANON_STORAGE_HIERARCHICAL_STORE_H
