#include "storage/hierarchical_store.h"

#include <algorithm>
#include <stdexcept>

namespace canon {

HierarchicalStore::HierarchicalStore(const OverlayNetwork& net,
                                     const LinkTable& links,
                                     std::size_t cache_capacity,
                                     CachePolicy policy)
    : net_(&net),
      links_(&links),
      router_(net, links),
      entries_(net.size()),
      pointers_(net.size()),
      caching_(cache_capacity > 0) {
  caches_.reserve(net.size());
  for (std::size_t i = 0; i < net.size(); ++i) {
    caches_.emplace_back(cache_capacity, policy);
  }
}

std::uint32_t HierarchicalStore::responsible_in(int domain, NodeId key) const {
  return net_->domain_ring(domain).predecessor_or_self(key);
}

bool HierarchicalStore::visible(int access_domain, int access_depth,
                                std::uint32_t origin) const {
  // The origin may see the entry iff it lies inside the access domain.
  const auto& chain = net_->domains().domain_chain(origin);
  return access_depth < static_cast<int>(chain.size()) &&
         chain[static_cast<std::size_t>(access_depth)] == access_domain;
}

std::uint32_t HierarchicalStore::put(std::uint32_t origin, NodeId key,
                                     std::string value, int storage_level,
                                     int access_level, int replication) {
  if (access_level > storage_level || access_level < 0) {
    throw std::invalid_argument(
        "put: the access domain must contain the storage domain");
  }
  if (replication < 1) throw std::invalid_argument("put: replication < 1");
  const auto& chain = net_->domains().domain_chain(origin);
  if (storage_level >= static_cast<int>(chain.size())) {
    throw std::invalid_argument("put: storage level deeper than origin");
  }
  const int ds = chain[static_cast<std::size_t>(storage_level)];
  const int da = chain[static_cast<std::size_t>(access_level)];
  const std::uint32_t holder = responsible_in(ds, key);
  // Replica set: the holder plus its replication-1 predecessors on the
  // storage domain ring (the nodes that become responsible if it fails).
  const RingView ring = net_->domain_ring(ds);
  std::uint32_t at = holder;
  for (int r = 0; r < replication; ++r) {
    entries_[at].push_back(Entry{key, value, ds, da, access_level});
    if (ring.size() < 2) break;
    const NodeId before =
        net_->space().advance(net_->id(at), net_->space().mask());
    at = ring.predecessor_or_self(before);
    if (at == holder) break;  // wrapped: domain smaller than replication
  }
  if (access_level < storage_level) {
    const std::uint32_t proxy = responsible_in(da, key);
    if (proxy != holder) {
      pointers_[proxy].push_back(Pointer{key, holder, da, access_level});
    }
  }
  return holder;
}

bool HierarchicalStore::erase(std::uint32_t origin, NodeId key,
                              int storage_level, int access_level) {
  const auto& chain = net_->domains().domain_chain(origin);
  if (storage_level >= static_cast<int>(chain.size()) || access_level < 0 ||
      access_level > storage_level) {
    return false;
  }
  const int ds = chain[static_cast<std::size_t>(storage_level)];
  const int da = chain[static_cast<std::size_t>(access_level)];
  const std::uint32_t holder = responsible_in(ds, key);
  bool removed = false;
  // Remove from every node of the storage domain holding a replica.
  for (const std::uint32_t m : net_->domains()
           .domain(ds)
           .members) {
    auto& list = entries_[m];
    const auto before = list.size();
    std::erase_if(list, [&](const Entry& e) {
      return e.key == key && e.storage_domain == ds && e.access_domain == da;
    });
    removed |= (list.size() != before);
  }
  (void)holder;
  const std::uint32_t proxy = responsible_in(da, key);
  std::erase_if(pointers_[proxy], [&](const Pointer& p) {
    return p.key == key && p.access_domain == da;
  });
  return removed;
}

bool HierarchicalStore::inspect(std::uint32_t m, NodeId key,
                                std::uint32_t origin, bool use_cache,
                                GetResult& result) {
  // 1. Cached answer?
  if (use_cache && caching_) {
    if (const auto hit = caches_[m].get(key)) {
      result.source = AnswerSource::kCache;
      result.value = hit->value;
      result.served_by = m;
      return true;
    }
  }
  // 2. Local content, subject to access control.
  for (const Entry& e : entries_[m]) {
    if (e.key == key && visible(e.access_domain, e.access_depth, origin)) {
      result.source = AnswerSource::kOwner;
      result.value = e.value;
      result.served_by = m;
      return true;
    }
  }
  // 3. A pointer to content stored deeper in its storage domain.
  for (const Pointer& p : pointers_[m]) {
    if (p.key != key || !visible(p.access_domain, p.access_depth, origin)) {
      continue;
    }
    // Resolve the indirection: fetch from the holder (and back).
    for (const Entry& e : entries_[p.holder]) {
      if (e.key == key) {
        result.source = AnswerSource::kPointer;
        result.value = e.value;
        result.served_by = p.holder;
        result.extra_pointer_hops = 2;
        return true;
      }
    }
  }
  return false;
}

GetResult HierarchicalStore::get(std::uint32_t origin, NodeId key) {
  GetResult result;
  result.route.path.push_back(origin);

  // Walk the greedy route hop by hop, inspecting local state at each node.
  const Route full = router_.route(origin, key);
  for (std::size_t i = 0; i < full.path.size(); ++i) {
    const std::uint32_t m = full.path[i];
    if (i > 0) result.route.path.push_back(m);
    if (inspect(m, key, origin, /*use_cache=*/true, result)) break;
  }

  if (result.source != AnswerSource::kNotFound && caching_) {
    // Cache the answer at the proxy node of every origin-side domain the
    // path passed through, annotated with the level it serves.
    const auto& chain = net_->domains().domain_chain(origin);
    for (std::size_t depth = 1; depth < chain.size(); ++depth) {
      const std::uint32_t proxy =
          responsible_in(chain[depth], key);
      // Only proxies the query actually visited hold a copy.
      const auto on_path =
          std::find(result.route.path.begin(), result.route.path.end(), proxy);
      if (on_path != result.route.path.end()) {
        caches_[proxy].put(key, result.value, static_cast<int>(depth));
      }
    }
  }
  result.route.ok = result.source != AnswerSource::kNotFound;
  return result;
}

HierarchicalStore::MultiGetResult HierarchicalStore::get_many(
    std::uint32_t origin, NodeId key, std::size_t limit) {
  MultiGetResult result;
  // Distinct values only (a pointer and its target may both be seen).
  const auto add_value = [&](const std::string& v) {
    if (result.values.size() < limit &&
        std::find(result.values.begin(), result.values.end(), v) ==
            result.values.end()) {
      result.values.push_back(v);
    }
  };
  const Route full = router_.route(origin, key);
  for (std::size_t i = 0;
       i < full.path.size() && result.values.size() < limit; ++i) {
    const std::uint32_t m = full.path[i];
    result.route.path.push_back(m);
    // Every visible local value counts; pointers resolve to their holder's
    // values.
    for (const Entry& e : entries_[m]) {
      if (e.key == key && visible(e.access_domain, e.access_depth, origin)) {
        add_value(e.value);
      }
    }
    for (const Pointer& p : pointers_[m]) {
      if (p.key != key || !visible(p.access_domain, p.access_depth, origin)) {
        continue;
      }
      for (const Entry& e : entries_[p.holder]) {
        if (e.key == key) add_value(e.value);
      }
    }
  }
  result.route.ok = !result.values.empty();
  return result;
}

GetResult HierarchicalStore::get_resilient(std::uint32_t origin, NodeId key,
                                            const FailureSet& failures,
                                            int leaf_set) {
  const ResilientRingRouter router(*net_, *links_, leaf_set);
  GetResult result;
  result.route.path.push_back(origin);
  const Route full = router.route(origin, key, failures);
  for (std::size_t i = 0; i < full.path.size(); ++i) {
    const std::uint32_t m = full.path[i];
    if (i > 0) result.route.path.push_back(m);
    // Caches are not consulted under failures (a dead holder cannot have
    // populated one for this query anyway, and stale copies of erased
    // content would be indistinguishable from live answers).
    if (inspect(m, key, origin, /*use_cache=*/false, result)) {
      // A pointer to a dead holder is unresolvable; keep walking.
      if (result.source == AnswerSource::kPointer &&
          failures.dead(result.served_by)) {
        result = GetResult{};
        result.route.path.assign(full.path.begin(),
                                 full.path.begin() + static_cast<long>(i) + 1);
        continue;
      }
      break;
    }
  }
  result.route.ok = result.source != AnswerSource::kNotFound;
  return result;
}

std::size_t HierarchicalStore::stored_pairs() const {
  std::size_t total = 0;
  for (const auto& list : entries_) total += list.size();
  return total;
}

std::size_t HierarchicalStore::pointer_entries() const {
  std::size_t total = 0;
  for (const auto& list : pointers_) total += list.size();
  return total;
}

}  // namespace canon
