// Per-node answer caches with the paper's level-annotated replacement
// policy (Section 4.2): copies cached at a proxy for a deep (large level
// number) domain are cheap to lose — another copy likely exists one level
// up — so eviction prefers them; plain LRU is provided for comparison.
#ifndef CANON_STORAGE_CACHE_H
#define CANON_STORAGE_CACHE_H

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/ids.h"

namespace canon {

enum class CachePolicy {
  kLevelAware,  ///< evict the deepest-level entry first, LRU within a level
  kLru,         ///< classic least-recently-used
};

class NodeCache {
 public:
  NodeCache() = default;
  NodeCache(std::size_t capacity, CachePolicy policy)
      : capacity_(capacity), policy_(policy) {}

  struct CachedAnswer {
    std::string value;
    int level = 0;  ///< hierarchy depth of the domain this copy serves
  };

  /// Inserts (or refreshes) an answer. A key already present keeps the
  /// smaller (higher-priority) level annotation.
  void put(NodeId key, const std::string& value, int level);

  /// Lookup; refreshes recency on hit.
  std::optional<CachedAnswer> get(NodeId key);

  /// Drops a (stale) entry.
  void invalidate(NodeId key);

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Slot {
    NodeId key = 0;
    CachedAnswer answer;
    std::uint64_t last_used = 0;
  };

  void evict_one();

  std::size_t capacity_ = 0;
  CachePolicy policy_ = CachePolicy::kLevelAware;
  std::unordered_map<NodeId, Slot> map_;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace canon

#endif  // CANON_STORAGE_CACHE_H
