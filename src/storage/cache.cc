#include "storage/cache.h"

namespace canon {

void NodeCache::put(NodeId key, const std::string& value, int level) {
  if (capacity_ == 0) return;
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.answer.value = value;
    it->second.answer.level = std::min(it->second.answer.level, level);
    it->second.last_used = ++clock_;
    return;
  }
  if (map_.size() >= capacity_) evict_one();
  map_[key] = Slot{key, CachedAnswer{value, level}, ++clock_};
}

std::optional<NodeCache::CachedAnswer> NodeCache::get(NodeId key) {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  it->second.last_used = ++clock_;
  return it->second.answer;
}

void NodeCache::invalidate(NodeId key) { map_.erase(key); }

void NodeCache::evict_one() {
  if (map_.empty()) return;
  auto victim = map_.begin();
  for (auto it = map_.begin(); it != map_.end(); ++it) {
    const auto& [vk, vs] = *victim;
    const auto& [k, s] = *it;
    bool worse;  // "worse" = better eviction candidate
    if (policy_ == CachePolicy::kLevelAware && s.answer.level != vs.answer.level) {
      worse = s.answer.level > vs.answer.level;  // deeper level goes first
    } else {
      worse = s.last_used < vs.last_used;
    }
    if (worse) victim = it;
  }
  map_.erase(victim);
}

}  // namespace canon
