// Structural health auditing for every overlay family.
//
// The paper's central claims are structural: Crescendo's per-level rings
// close (Section 2.1), Can-Can's zones tile each domain (Section 3.4), and
// incremental maintenance converges to the from-scratch construction
// (Section 2.3). The telemetry layer observes *behavior* (hops, latency,
// load); this module validates *structure*, so that drift under churn is
// detected and attributed before lookup metrics degrade.
//
// StructureAuditor runs named check batteries over an (OverlayNetwork,
// LinkTable) pair and returns machine-readable Violation records — one per
// failed assertion, carrying the check name, the offending node, the
// hierarchy level, and a human-readable detail — instead of a bare bool.
// Which batteries a named construction guarantees is recorded in the
// family registry (overlay/family_registry.h) — `registry::audit_family`
// composes them:
//
//   battery          invariant                               families
//   ---------------  --------------------------------------  -----------------
//   csr              LinkTable CSR consistency: rows sorted  all
//                    strictly ascending, no self/dangling
//                    targets, inline NodeIds aligned
//   hierarchy        DomainTree consistency + merge-limit    all
//                    monotonicity (coarser rings never have
//                    farther successors)
//   ring.closure     per-level ring closure: every node      ring families
//                    links to its successor in every domain
//                    ring it belongs to
//   chord.finger     exact finger sets (condition (a)+(b))   chord, crescendo
//   links.expected   byte-diff against a from-scratch        deterministic
//                    rebuild                                 families
//   xor.bucket       XOR bucket coverage per domain          kademlia, kandy
//   zone.tiling /    CAN zones tile the space exactly; a     can, cancan
//   zone.containment node's primary zone contains its ID
//   can.face         CAN face-neighbor links present         can, cancan (leaf)
//   group.clique     intra-group cliques complete            *_prox
//   live.degree /    under an injected FailureSet: every     any (on demand)
//   live.leafset     live node keeps a live neighbor and a
//                    live global-ring successor in reach
//
// Checks count toward the `audit.checks` / `audit.violations` telemetry
// counters when a MetricsRegistry is installed. Audits are read-only and
// run at human cadence (doctor runs, periodic churn snapshots); none of
// this is on a routing hot path.
#ifndef CANON_AUDIT_AUDITOR_H
#define CANON_AUDIT_AUDITOR_H

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dht/can.h"
#include "overlay/fault_plan.h"
#include "overlay/link_table.h"
#include "overlay/overlay_network.h"
#include "telemetry/json_writer.h"

namespace canon {
class GroupedOverlay;  // canon/proximity.h
}

namespace canon::audit {

/// Sentinel for violations not attributable to a single node.
inline constexpr std::uint32_t kNoNode = 0xFFFFFFFFu;

/// One failed structural assertion.
struct Violation {
  std::string check;            ///< battery name, e.g. "ring.closure"
  std::uint32_t node = kNoNode; ///< offending node index, or kNoNode
  int level = -1;               ///< hierarchy level, -1 when not applicable
  std::string detail;           ///< human-readable explanation
};

/// The outcome of one or more batteries: every violation plus the number
/// of assertions each battery evaluated (so "ok" is distinguishable from
/// "didn't look").
struct AuditReport {
  std::vector<Violation> violations;
  std::map<std::string, std::uint64_t> checks;  ///< battery -> assertions

  bool ok() const { return violations.empty(); }
  std::uint64_t total_checks() const;

  /// {"ok": bool, "checks": {battery: n}, "violation_count": n,
  ///  "violations": [{check, node, level, detail}, ...]} — the shape
  /// embedded in canon_doctor --json and in bench reports.
  telemetry::JsonValue to_json() const;

  /// One line: "HEALTHY (N checks)" or "K violations (first: ...)".
  std::string summary() const;
};

class StructureAuditor {
 public:
  /// `links` must be finalized (throws std::invalid_argument otherwise);
  /// both references are borrowed for the auditor's lifetime.
  StructureAuditor(const OverlayNetwork& net, const LinkTable& links);

  // Individual batteries. Each appends to `r.violations`, bumps its entry
  // in `r.checks`, and feeds the audit.* telemetry counters.

  /// CSR consistency of the link table (battery "csr").
  void check_csr(AuditReport& r) const;

  /// DomainTree consistency + merge-limit monotonicity ("hierarchy").
  void check_hierarchy(AuditReport& r) const;

  /// Ring closure for every level in [min_level, node depth]: each node
  /// links to its successor within each of those domain rings
  /// ("ring.closure"). Pass max_level = 0 for flat constructions.
  void check_ring_closure(AuditReport& r, int min_level, int max_level) const;

  /// Exact Chord/Crescendo finger sets ("chord.finger"): recomputes every
  /// node's finger set (per-level with merge limits when `hierarchical`)
  /// and reports both missing and extra links.
  void check_chord_fingers(AuditReport& r, bool hierarchical) const;

  /// Byte-diff against an expected from-scratch table ("links.expected",
  /// or `check_name` when given): per-node missing/extra links.
  void check_expected(AuditReport& r, const LinkTable& expected,
                      std::string_view check_name = "links.expected") const;

  /// XOR bucket coverage ("xor.bucket"): for each domain of each node's
  /// chain (root only when not `hierarchical`), every bucket that is
  /// non-empty among the domain's members holds at least one link into
  /// that domain — the invariant greedy XOR routing needs.
  void check_xor_buckets(AuditReport& r, bool hierarchical) const;

  /// A zone with the member that owns it, extracted from a ZoneTree (or
  /// corrupted by a mutation test).
  struct OwnedZone {
    ZoneTree::Zone zone;
    std::uint32_t owner = kNoNode;
  };
  static std::vector<OwnedZone> extract_zones(
      const ZoneTree& tree, std::span<const std::uint32_t> members);

  /// Zone tiling ("zone.tiling": the zones partition the whole ID space,
  /// no gap, no overlap) and domain containment ("zone.containment": every
  /// owner's ID lies inside one of its own zones). `level` tags the
  /// violations with the domain's depth.
  void check_zone_list(AuditReport& r, std::span<const OwnedZone> zones,
                       int level) const;

  /// Face-neighbor coverage ("can.face"): every CAN neighbor the partition
  /// demands for a member is present in the link table. With `exact`, any
  /// other link from a member is also a violation (flat CAN keeps nothing
  /// else); Can-Can leaf partitions use exact = false.
  void check_can_links(AuditReport& r, const ZoneTree& tree,
                       std::span<const std::uint32_t> members,
                       int level, bool exact) const;

  /// Intra-group clique completeness for the proximity families
  /// ("group.clique").
  void check_group_cliques(AuditReport& r, const GroupedOverlay& groups) const;

  /// Liveness under an injected FailureSet ("live.degree": every live
  /// node keeps at least one live link-table neighbor; "live.leafset",
  /// when leaf_set > 0: a live successor exists within `leaf_set` steps
  /// clockwise on the global ring — the reach of the leaf-set fallback).
  /// Structure-only: says whether recovery *can* work, not whether a
  /// particular route does.
  void check_liveness(AuditReport& r, const FailureSet& dead,
                      int leaf_set) const;

 private:
  void add_violation(AuditReport& r, std::string check, std::uint32_t node,
                     int level, std::string detail) const;
  void count_checks(AuditReport& r, std::string_view battery,
                    std::uint64_t n) const;

  const OverlayNetwork* net_;
  const LinkTable* links_;
};

}  // namespace canon::audit

#endif  // CANON_AUDIT_AUDITOR_H
