#include "audit/auditor.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "canon/cancan.h"
#include "canon/crescendo.h"
#include "canon/mixed.h"
#include "canon/proximity.h"
#include "dht/chord.h"
#include "dht/kademlia.h"
#include "telemetry/metrics.h"

namespace canon::audit {

namespace {

std::string hex_of(const OverlayNetwork& net, std::uint32_t node) {
  return id_to_hex(net.id(node), net.space().bits());
}

}  // namespace

std::uint64_t AuditReport::total_checks() const {
  std::uint64_t total = 0;
  for (const auto& [battery, n] : checks) total += n;
  return total;
}

telemetry::JsonValue AuditReport::to_json() const {
  telemetry::JsonValue doc = telemetry::JsonValue::object();
  doc.set("ok", telemetry::JsonValue(ok()));
  telemetry::JsonValue per_battery = telemetry::JsonValue::object();
  for (const auto& [battery, n] : checks) {
    per_battery.set(battery, telemetry::JsonValue(n));
  }
  doc.set("checks", std::move(per_battery));
  doc.set("violation_count",
          telemetry::JsonValue(
              static_cast<std::uint64_t>(violations.size())));
  telemetry::JsonValue list = telemetry::JsonValue::array();
  for (const Violation& v : violations) {
    telemetry::JsonValue item = telemetry::JsonValue::object();
    item.set("check", telemetry::JsonValue(v.check));
    if (v.node == kNoNode) {
      item.set("node", telemetry::JsonValue());
    } else {
      item.set("node", telemetry::JsonValue(static_cast<std::int64_t>(v.node)));
    }
    item.set("level", telemetry::JsonValue(v.level));
    item.set("detail", telemetry::JsonValue(v.detail));
    list.push_back(std::move(item));
  }
  doc.set("violations", std::move(list));
  return doc;
}

std::string AuditReport::summary() const {
  if (ok()) {
    return "HEALTHY (" + std::to_string(total_checks()) + " checks)";
  }
  return std::to_string(violations.size()) + " violation" +
         (violations.size() == 1 ? "" : "s") + " (first: " +
         violations.front().check + ": " + violations.front().detail + ")";
}

StructureAuditor::StructureAuditor(const OverlayNetwork& net,
                                   const LinkTable& links)
    : net_(&net), links_(&links) {
  if (!links.finalized()) {
    throw std::invalid_argument("StructureAuditor: links not finalized");
  }
  if (links.node_count() != net.size()) {
    throw std::invalid_argument(
        "StructureAuditor: link table size does not match the network");
  }
}

void StructureAuditor::add_violation(AuditReport& r, std::string check,
                                     std::uint32_t node, int level,
                                     std::string detail) const {
  if (telemetry::Counter* c = telemetry::maybe_counter("audit.violations")) {
    c->inc();
  }
  r.violations.push_back(
      Violation{std::move(check), node, level, std::move(detail)});
}

void StructureAuditor::count_checks(AuditReport& r, std::string_view battery,
                                    std::uint64_t n) const {
  if (telemetry::Counter* c = telemetry::maybe_counter("audit.checks")) {
    c->inc(n);
  }
  r.checks[std::string(battery)] += n;
}

void StructureAuditor::check_csr(AuditReport& r) const {
  const std::size_t n = net_->size();
  std::uint64_t evaluated = 0;
  for (std::uint32_t m = 0; m < n; ++m) {
    const auto row = links_->neighbors(m);
    bool sorted_ok = true, range_ok = true, self_ok = true, ids_ok = true;
    for (std::size_t k = 0; k < row.size(); ++k) {
      evaluated += 3;
      if (row[k] >= n) {
        if (range_ok) {
          add_violation(r, "csr.target_range", m, -1,
                        "dangling target index " + std::to_string(row[k]) +
                            " >= node count " + std::to_string(n));
        }
        range_ok = false;
        continue;  // the id/self checks below would index out of bounds
      }
      if (row[k] == m && self_ok) {
        add_violation(r, "csr.self_link", m, -1,
                      "row contains a self-link");
        self_ok = false;
      }
      if (k > 0 && row[k] <= row[k - 1] && sorted_ok) {
        add_violation(
            r, "csr.row_sorted", m, -1,
            row[k] == row[k - 1]
                ? "duplicate target " + std::to_string(row[k])
                : "row not sorted ascending at position " + std::to_string(k));
        sorted_ok = false;
      }
      if (links_->has_inline_ids()) {
        ++evaluated;
        if (links_->neighbor_ids(m)[k] != net_->id(row[k]) && ids_ok) {
          add_violation(r, "csr.inline_ids", m, -1,
                        "inline NodeId misaligned at position " +
                            std::to_string(k) + " (have " +
                            id_to_hex(links_->neighbor_ids(m)[k],
                                      net_->space().bits()) +
                            ", index says " + hex_of(*net_, row[k]) + ")");
          ids_ok = false;
        }
      }
    }
  }
  count_checks(r, "csr", evaluated);
}

void StructureAuditor::check_hierarchy(AuditReport& r) const {
  const DomainTree& dom = net_->domains();
  std::uint64_t evaluated = 0;

  // Per-domain structure: member ordering, parent/child back-links.
  for (int d = 0; d < dom.domain_count(); ++d) {
    const Domain& domain = dom.domain(d);
    for (std::size_t i = 0; i + 1 < domain.members.size(); ++i) {
      ++evaluated;
      if (net_->id(domain.members[i]) >= net_->id(domain.members[i + 1])) {
        add_violation(r, "hierarchy.member_order", domain.members[i + 1],
                      domain.depth,
                      "domain " + std::to_string(d) +
                          " member list not ID-sorted");
      }
    }
    for (const int child : domain.children) {
      evaluated += 2;
      if (dom.domain(child).parent != d) {
        add_violation(r, "hierarchy.parent_link", kNoNode, domain.depth,
                      "child domain " + std::to_string(child) +
                          " does not point back to parent " +
                          std::to_string(d));
      }
      if (dom.domain(child).depth != domain.depth + 1) {
        add_violation(r, "hierarchy.depth", kNoNode, domain.depth,
                      "child domain " + std::to_string(child) +
                          " depth is not parent depth + 1");
      }
    }
  }

  // Per-node chains: the chain matches the node's DomainPath, the node is
  // a member at every level, and merge limits are monotone (a coarser
  // ring's successor is never farther than a finer ring's — the property
  // condition (b) of the paper's merge rule leans on).
  for (std::uint32_t m = 0; m < net_->size(); ++m) {
    const auto& chain = dom.domain_chain(m);
    ++evaluated;
    if (static_cast<int>(chain.size()) != dom.node_depth(m) + 1 ||
        chain.empty() || chain.front() != dom.root()) {
      add_violation(r, "hierarchy.chain", m, -1,
                    "domain chain does not run root..leaf");
      continue;
    }
    std::uint64_t deeper_dist = 0;  // successor distance one level down
    for (int l = static_cast<int>(chain.size()) - 1; l >= 0; --l) {
      const int d = chain[static_cast<std::size_t>(l)];
      evaluated += 2;
      const auto& members = dom.domain(d).members;
      if (!std::binary_search(members.begin(), members.end(), m)) {
        add_violation(r, "hierarchy.chain", m, l,
                      "node missing from its level-" + std::to_string(l) +
                          " domain member list");
      }
      const RingView ring = net_->domain_ring(d);
      const std::uint64_t dist = ring.successor_distance(net_->id(m));
      if (l < static_cast<int>(chain.size()) - 1 && dist > deeper_dist) {
        add_violation(
            r, "hierarchy.merge_limit", m, l,
            "successor distance grows from level " + std::to_string(l + 1) +
                " to coarser level " + std::to_string(l) +
                " (merge limits must be monotone)");
      }
      deeper_dist = dist;
    }
  }
  count_checks(r, "hierarchy", evaluated);
}

void StructureAuditor::check_ring_closure(AuditReport& r, int min_level,
                                          int max_level) const {
  const DomainTree& dom = net_->domains();
  std::uint64_t evaluated = 0;
  for (std::uint32_t m = 0; m < net_->size(); ++m) {
    const auto& chain = dom.domain_chain(m);
    const int top = std::min(max_level, static_cast<int>(chain.size()) - 1);
    for (int l = min_level; l <= top; ++l) {
      const RingView ring =
          net_->domain_ring(chain[static_cast<std::size_t>(l)]);
      if (ring.size() < 2) continue;
      ++evaluated;
      const std::uint32_t succ = ring.first_at_distance(net_->id(m), 1);
      if (succ == RingView::kNone) continue;  // cannot happen with >= 2
      if (!links_->has_link(m, succ)) {
        add_violation(r, "ring.closure", m, l,
                      "missing successor edge to " + hex_of(*net_, succ) +
                          " in the level-" + std::to_string(l) +
                          " domain ring");
      }
    }
  }
  count_checks(r, "ring.closure", evaluated);
}

void StructureAuditor::check_chord_fingers(AuditReport& r,
                                           bool hierarchical) const {
  // Recompute every node's finger set with the construction rule itself —
  // conditions (a) and (b) — and byte-diff against the live table.
  LinkTable expected(net_->size());
  const RingView whole = net_->ring();
  for (std::uint32_t m = 0; m < net_->size(); ++m) {
    if (hierarchical) {
      add_crescendo_links(*net_, m, expected);
    } else {
      add_chord_fingers(*net_, whole, m, kNoLimit, expected);
    }
  }
  expected.finalize();
  check_expected(r, expected, "chord.finger");
}

void StructureAuditor::check_expected(AuditReport& r,
                                      const LinkTable& expected,
                                      std::string_view check_name) const {
  if (!expected.finalized() || expected.node_count() != net_->size()) {
    throw std::invalid_argument(
        "StructureAuditor::check_expected: bad expected table");
  }
  std::uint64_t evaluated = 0;
  for (std::uint32_t m = 0; m < net_->size(); ++m) {
    const auto actual = links_->neighbors(m);
    const auto want = expected.neighbors(m);
    evaluated += actual.size() + want.size();
    std::size_t a = 0, w = 0;
    while (a < actual.size() || w < want.size()) {
      if (w == want.size() ||
          (a < actual.size() && actual[a] < want[w])) {
        add_violation(r, std::string(check_name), m,
                      actual[a] < net_->size()
                          ? net_->lca_level(m, actual[a])
                          : -1,
                      "unexpected link to " +
                          (actual[a] < net_->size()
                               ? hex_of(*net_, actual[a])
                               : "index " + std::to_string(actual[a])));
        ++a;
      } else if (a == actual.size() || want[w] < actual[a]) {
        add_violation(r, std::string(check_name), m,
                      net_->lca_level(m, want[w]),
                      "missing link to " + hex_of(*net_, want[w]));
        ++w;
      } else {
        ++a;
        ++w;
      }
    }
  }
  count_checks(r, check_name, evaluated);
}

void StructureAuditor::check_xor_buckets(AuditReport& r,
                                         bool hierarchical) const {
  const DomainTree& dom = net_->domains();
  const int bits = net_->space().bits();
  std::vector<bool> covered(static_cast<std::size_t>(bits));
  std::uint64_t evaluated = 0;
  for (std::uint32_t m = 0; m < net_->size(); ++m) {
    const auto& chain = dom.domain_chain(m);
    const int top = hierarchical ? static_cast<int>(chain.size()) - 1 : 0;
    for (int l = 0; l <= top; ++l) {
      const int d = chain[static_cast<std::size_t>(l)];
      const RingView ring = net_->domain_ring(d);
      if (ring.size() < 2) continue;
      std::fill(covered.begin(), covered.end(), false);
      for (const std::uint32_t nb : links_->neighbors(m)) {
        if (nb >= net_->size()) continue;  // csr battery reports these
        if (!net_->node(nb).domain.in_domain_of(net_->node(m).domain, l)) {
          continue;
        }
        const std::uint64_t dist =
            net_->space().xor_distance(net_->id(m), net_->id(nb));
        if (dist > 0) covered[static_cast<std::size_t>(floor_log2(dist))] = true;
      }
      for (int k = 0; k < bits; ++k) {
        ++evaluated;
        if (bucket_closest_distance(*net_, ring, net_->id(m), k) == kNoLimit) {
          continue;  // bucket empty within this domain
        }
        if (!covered[static_cast<std::size_t>(k)]) {
          add_violation(r, "xor.bucket", m, l,
                        "bucket 2^" + std::to_string(k) +
                            " is populated in the level-" + std::to_string(l) +
                            " domain but holds no link");
        }
      }
    }
  }
  count_checks(r, "xor.bucket", evaluated);
}

std::vector<StructureAuditor::OwnedZone> StructureAuditor::extract_zones(
    const ZoneTree& tree, std::span<const std::uint32_t> members) {
  std::vector<OwnedZone> out;
  for (const std::uint32_t m : members) {
    for (const ZoneTree::Zone& z : tree.zones_of(m)) {
      out.push_back(OwnedZone{z, m});
    }
  }
  return out;
}

void StructureAuditor::check_zone_list(AuditReport& r,
                                       std::span<const OwnedZone> zones,
                                       int level) const {
  const IdSpace& space = net_->space();
  const int bits = space.bits();
  std::uint64_t evaluated = 0;

  // Zone well-formedness + domain containment: every owner's ID must lie
  // inside at least one of its own zones (the primary-zone rule).
  std::vector<std::uint32_t> owners;
  for (const OwnedZone& oz : zones) {
    evaluated += 2;
    if (oz.zone.len < 0 || oz.zone.len > bits) {
      add_violation(r, "zone.tiling", oz.owner, level,
                    "zone prefix length " + std::to_string(oz.zone.len) +
                        " outside [0, " + std::to_string(bits) + "]");
      continue;
    }
    const std::uint64_t size =
        oz.zone.len == 0 ? 0 : (std::uint64_t{1} << (bits - oz.zone.len));
    if (oz.zone.len > 0 && (oz.zone.prefix & (size - 1)) != 0) {
      add_violation(r, "zone.tiling", oz.owner, level,
                    "zone " + id_to_hex(oz.zone.prefix, bits) + "/" +
                        std::to_string(oz.zone.len) +
                        " is not aligned to its own size");
    }
    owners.push_back(oz.owner);
  }
  std::sort(owners.begin(), owners.end());
  owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
  for (const std::uint32_t owner : owners) {
    ++evaluated;
    bool contained = false;
    for (const OwnedZone& oz : zones) {
      if (oz.owner != owner || oz.zone.len < 0 || oz.zone.len > bits) continue;
      const NodeId id = net_->id(owner);
      const int shift = bits - oz.zone.len;
      const NodeId block =
          oz.zone.len == 0
              ? 0
              : (shift >= 64 ? 0 : ((id >> shift) << shift));
      if (block == oz.zone.prefix) {
        contained = true;
        break;
      }
    }
    if (!contained) {
      add_violation(r, "zone.containment", owner, level,
                    "node " + hex_of(*net_, owner) +
                        " owns no zone containing its own ID");
    }
  }

  // Tiling: sorted by prefix the zones must cover [0, 2^bits) exactly —
  // no gap, no overlap. (A single len-0 zone is the whole space.)
  std::vector<OwnedZone> sorted(zones.begin(), zones.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const OwnedZone& a, const OwnedZone& b) {
              return a.zone.prefix < b.zone.prefix;
            });
  if (sorted.size() == 1 && sorted[0].zone.len == 0) {
    count_checks(r, "zone.tiling", evaluated + 1);
    return;
  }
  NodeId expected_start = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    ++evaluated;
    const OwnedZone& oz = sorted[i];
    if (oz.zone.len < 1 || oz.zone.len > bits) continue;  // reported above
    if (oz.zone.prefix != expected_start) {
      add_violation(
          r, "zone.tiling", oz.owner, level,
          std::string(oz.zone.prefix > expected_start ? "gap" : "overlap") +
              " before zone " + id_to_hex(oz.zone.prefix, bits) + "/" +
              std::to_string(oz.zone.len) + " (expected block start " +
              id_to_hex(expected_start, bits) + ")");
      expected_start = oz.zone.prefix;  // resynchronize to localize reports
    }
    expected_start += std::uint64_t{1} << (bits - oz.zone.len);
  }
  ++evaluated;
  // The final end must wrap to exactly the space size (0 in 64-bit math
  // when bits == 64, mask()+1 otherwise).
  const NodeId space_end = space.mask() + 1;
  if (expected_start != space_end) {
    add_violation(r, "zone.tiling",
                  sorted.empty() ? kNoNode : sorted.back().owner, level,
                  "zones do not cover the identifier space (end " +
                      id_to_hex(expected_start, bits) + ")");
  }
  count_checks(r, "zone.tiling", evaluated);
}

void StructureAuditor::check_can_links(AuditReport& r, const ZoneTree& tree,
                                       std::span<const std::uint32_t> members,
                                       int level, bool exact) const {
  std::uint64_t evaluated = 0;
  for (const std::uint32_t m : members) {
    std::vector<std::uint32_t> want = tree.neighbors(m);
    std::sort(want.begin(), want.end());
    const auto actual = links_->neighbors(m);
    evaluated += want.size();
    for (const std::uint32_t v : want) {
      if (!std::binary_search(actual.begin(), actual.end(), v)) {
        add_violation(r, "can.face", m, level,
                      "missing face-neighbor link to " + hex_of(*net_, v));
      }
    }
    if (exact) {
      evaluated += actual.size();
      for (const std::uint32_t v : actual) {
        if (!std::binary_search(want.begin(), want.end(), v)) {
          add_violation(r, "can.face", m, level,
                        "link to " + hex_of(*net_, v) +
                            " crosses no zone face");
        }
      }
    }
  }
  count_checks(r, "can.face", evaluated);
}

void StructureAuditor::check_group_cliques(AuditReport& r,
                                           const GroupedOverlay& groups) const {
  std::uint64_t evaluated = 0;
  for (const GroupedOverlay::Group& g : groups.groups()) {
    for (const std::uint32_t m : g.members) {
      for (const std::uint32_t v : g.members) {
        if (v == m) continue;
        ++evaluated;
        if (!links_->has_link(m, v)) {
          add_violation(r, "group.clique", m, -1,
                        "missing intra-group link to " + hex_of(*net_, v) +
                            " (group " +
                            id_to_hex(g.gid, groups.prefix_bits()) + ")");
        }
      }
    }
  }
  count_checks(r, "group.clique", evaluated);
}

void StructureAuditor::check_liveness(AuditReport& r,
                                      const FailureSet& dead,
                                      int leaf_set) const {
  const std::uint32_t n = static_cast<std::uint32_t>(net_->size());
  std::uint64_t degree_checks = 0;
  std::uint64_t leaf_checks = 0;
  for (std::uint32_t m = 0; m < n; ++m) {
    if (dead.dead(m)) continue;
    ++degree_checks;
    bool live_neighbor = false;
    for (const std::uint32_t v : links_->neighbors(m)) {
      if (!dead.dead(v)) {
        live_neighbor = true;
        break;
      }
    }
    if (!live_neighbor) {
      add_violation(r, "live.degree", m, -1,
                    "node " + hex_of(*net_, m) +
                        " has no live neighbor left");
    }
    if (leaf_set > 0) {
      ++leaf_checks;
      // Node indices are ascending by ID, so index order IS ring order.
      bool live_successor = false;
      for (int step = 1; step <= leaf_set; ++step) {
        const std::uint32_t succ = (m + static_cast<std::uint32_t>(step)) % n;
        if (succ == m) break;  // wrapped all the way around
        if (!dead.dead(succ)) {
          live_successor = true;
          break;
        }
      }
      if (!live_successor) {
        add_violation(r, "live.leafset", m, -1,
                      "no live successor within " +
                          std::to_string(leaf_set) +
                          " ring steps of node " + hex_of(*net_, m));
      }
    }
  }
  count_checks(r, "live.degree", degree_checks);
  if (leaf_set > 0) count_checks(r, "live.leafset", leaf_checks);
}

}  // namespace canon::audit
