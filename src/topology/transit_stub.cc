#include "topology/transit_stub.h"

#include <stdexcept>

namespace canon {

void TransitStubTopology::add_edge(int a, int b, double ms) {
  if (a == b) return;
  adjacency_[static_cast<std::size_t>(a)].push_back(Edge{b, ms});
  adjacency_[static_cast<std::size_t>(b)].push_back(Edge{a, ms});
}

TransitStubTopology::TransitStubTopology(const TransitStubConfig& config,
                                         Rng& rng)
    : config_(config) {
  if (config.transit_domains < 1 || config.transit_per_domain < 1 ||
      config.stub_domains_per_transit < 0 || config.stubs_per_domain < 1) {
    throw std::invalid_argument("TransitStubTopology: bad config");
  }

  // Lay out routers: all transit routers first, then stub routers grouped
  // by (transit domain, transit router, stub domain).
  std::vector<std::vector<int>> transit(
      static_cast<std::size_t>(config.transit_domains));
  for (int td = 0; td < config.transit_domains; ++td) {
    for (int t = 0; t < config.transit_per_domain; ++t) {
      transit[static_cast<std::size_t>(td)].push_back(
          static_cast<int>(routers_.size()));
      routers_.push_back(RouterInfo{true, td, t, -1, -1});
    }
  }
  // Stub routers.
  std::vector<std::vector<int>> stub_domain_routers;
  std::vector<int> stub_domain_gateway;  // transit router of each stub domain
  for (int td = 0; td < config.transit_domains; ++td) {
    for (int t = 0; t < config.transit_per_domain; ++t) {
      for (int sd = 0; sd < config.stub_domains_per_transit; ++sd) {
        std::vector<int> members;
        for (int s = 0; s < config.stubs_per_domain; ++s) {
          members.push_back(static_cast<int>(routers_.size()));
          routers_.push_back(RouterInfo{false, td, t, sd, s});
          stub_routers_.push_back(members.back());
        }
        stub_domain_routers.push_back(std::move(members));
        stub_domain_gateway.push_back(transit[static_cast<std::size_t>(td)]
                                             [static_cast<std::size_t>(t)]);
      }
    }
  }
  adjacency_.resize(routers_.size());

  const auto ring_plus_chords = [&](const std::vector<int>& members,
                                    double ms) {
    const std::size_t n = members.size();
    if (n < 2) return;
    for (std::size_t i = 0; i < n; ++i) {
      add_edge(members[i], members[(i + 1) % n], ms);
    }
    const int extra =
        static_cast<int>(config_.extra_edge_fraction * static_cast<double>(n));
    for (int e = 0; e < extra; ++e) {
      const int a = members[rng.uniform(n)];
      const int b = members[rng.uniform(n)];
      add_edge(a, b, ms);
    }
  };

  // Intra-transit-domain connectivity.
  for (const auto& domain : transit) {
    ring_plus_chords(domain, config.transit_transit_ms);
  }
  // Inter-domain connectivity: a ring of domains plus random chords, each
  // edge between random transit routers of the two domains.
  const auto domain_edge = [&](int da, int db) {
    const auto& a = transit[static_cast<std::size_t>(da)];
    const auto& b = transit[static_cast<std::size_t>(db)];
    add_edge(a[rng.uniform(a.size())], b[rng.uniform(b.size())],
             config.transit_transit_ms);
  };
  for (int d = 0; d < config.transit_domains; ++d) {
    if (config.transit_domains > 1) {
      domain_edge(d, (d + 1) % config.transit_domains);
    }
  }
  for (int e = 0; e < config.extra_domain_edges; ++e) {
    if (config.transit_domains < 2) break;
    const int da = static_cast<int>(
        rng.uniform(static_cast<std::uint64_t>(config.transit_domains)));
    int db = static_cast<int>(
        rng.uniform(static_cast<std::uint64_t>(config.transit_domains)));
    if (da == db) db = (db + 1) % config.transit_domains;
    domain_edge(da, db);
  }
  // Stub domains: internal ring + chords, one gateway link to the transit
  // router they hang off.
  for (std::size_t sd = 0; sd < stub_domain_routers.size(); ++sd) {
    const auto& members = stub_domain_routers[sd];
    ring_plus_chords(members, config.stub_stub_ms);
    add_edge(members[rng.uniform(members.size())], stub_domain_gateway[sd],
             config.transit_stub_ms);
  }
}

DomainPath TransitStubTopology::host_hierarchy_path(int r) const {
  const RouterInfo& info = router(r);
  if (info.is_transit) {
    throw std::invalid_argument(
        "host_hierarchy_path: hosts attach to stub routers only");
  }
  return DomainPath({static_cast<std::uint16_t>(info.transit_domain),
                     static_cast<std::uint16_t>(info.transit_index),
                     static_cast<std::uint16_t>(info.stub_domain),
                     static_cast<std::uint16_t>(info.stub_index)});
}

}  // namespace canon
