// Ties the overlay to the physical topology: host attachment, host-to-host
// latencies, the induced five-level hierarchy, and overlay populations
// placed on the topology (Section 5.2's experimental setup).
#ifndef CANON_TOPOLOGY_PHYSICAL_NETWORK_H
#define CANON_TOPOLOGY_PHYSICAL_NETWORK_H

#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "overlay/metrics.h"
#include "overlay/overlay_network.h"
#include "topology/landmark_latency.h"
#include "topology/transit_stub.h"

namespace canon {

/// A generated router graph plus its latency oracle — the exact all-pairs
/// matrix at default scale, landmark triangulation past the threshold
/// (see landmark_latency.h).
class PhysicalNetwork {
 public:
  PhysicalNetwork(const TransitStubConfig& config, Rng& rng,
                  LandmarkLatencyConfig latency_config = {})
      : topo_(config, rng), latency_(topo_, latency_config) {}

  const TransitStubTopology& topology() const { return topo_; }
  const LandmarkLatency& latencies() const { return latency_; }

  /// Latency between hosts attached to stub routers `ra` and `rb`:
  /// 1 ms up + router path + 1 ms down (2 ms between hosts on one stub).
  double host_latency(int ra, int rb) const {
    return 2 * topo_.config().host_stub_ms + latency_.latency(ra, rb);
  }

  /// Mean host-to-host latency over `samples` random stub-router pairs —
  /// the paper's stretch normalizer ("average shortest-path latency
  /// between any two nodes").
  double mean_host_latency(int samples, Rng& rng) const;

 private:
  TransitStubTopology topo_;
  LandmarkLatency latency_;
};

/// Builds an overlay population of `count` hosts attached uniformly
/// (round-robin) to the stub routers, with each node's hierarchy position
/// induced by the topology. IDs are random in `id_bits` bits.
OverlayNetwork make_physical_population(std::size_t count,
                                        const PhysicalNetwork& phys,
                                        int id_bits, Rng& rng);

/// Per-hop latency callback for routes over `net` (nodes must carry their
/// stub-router attachment, as make_physical_population arranges).
HopCost host_hop_cost(const OverlayNetwork& net, const PhysicalNetwork& phys);

}  // namespace canon

#endif  // CANON_TOPOLOGY_PHYSICAL_NETWORK_H
