#include "topology/landmark_latency.h"

#include <limits>
#include <queue>
#include <stdexcept>

#include "common/parallel.h"
#include "telemetry/scoped_timer.h"

namespace canon {

void single_source_latencies(const TransitStubTopology& topo, int src,
                             std::vector<double>& dist) {
  const std::size_t n = static_cast<std::size_t>(topo.router_count());
  dist.assign(n, std::numeric_limits<double>::infinity());
  dist[static_cast<std::size_t>(src)] = 0;
  using Item = std::pair<double, int>;  // (distance, router)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  queue.emplace(0.0, src);
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    for (const auto& e : topo.edges(u)) {
      const double nd = d + e.ms;
      if (nd < dist[static_cast<std::size_t>(e.to)]) {
        dist[static_cast<std::size_t>(e.to)] = nd;
        queue.emplace(nd, e.to);
      }
    }
  }
}

namespace {

/// Landmarks per shard: one Dijkstra costs far more than a shard claim,
/// so small shards give the best load balance.
constexpr std::size_t kLandmarkGrain = 4;

}  // namespace

LandmarkLatency::LandmarkLatency(const TransitStubTopology& topo,
                                 LandmarkLatencyConfig config)
    : n_(topo.router_count()) {
  if (n_ <= config.exact_threshold) {
    // Small graph: the historical exact matrix, bit for bit (its own
    // build.latency_matrix_ms timer included).
    exact_ = std::make_unique<LatencyMatrix>(topo);
    return;
  }
  telemetry::ScopedTimer timer("build.landmark_latency_ms");
  // Deterministic landmark set: every transit router, plus every
  // stride-th stub router. No randomness is consumed, so the estimator
  // is a pure function of the topology.
  const int stride = config.stub_stride < 1 ? 1 : config.stub_stride;
  for (int r = 0; r < n_; ++r) {
    if (topo.router(r).is_transit) landmarks_.push_back(r);
  }
  const auto& stubs = topo.stub_routers();
  for (std::size_t i = 0; i < stubs.size();
       i += static_cast<std::size_t>(stride)) {
    landmarks_.push_back(stubs[i]);
  }
  const std::size_t n = static_cast<std::size_t>(n_);
  ms_.assign(landmarks_.size() * n, std::numeric_limits<float>::infinity());
  // One Dijkstra per landmark; each shard owns its landmarks' rows of
  // ms_, so the sharded runs write disjoint ranges and need no locks.
  parallel_for(landmarks_.size(), kLandmarkGrain,
               [&](std::size_t begin, std::size_t end) {
                 std::vector<double> dist;
                 for (std::size_t l = begin; l < end; ++l) {
                   single_source_latencies(topo, landmarks_[l], dist);
                   float* row = ms_.data() + l * n;
                   for (std::size_t v = 0; v < n; ++v) {
                     if (!(dist[v] < std::numeric_limits<double>::infinity())) {
                       throw std::logic_error(
                           "LandmarkLatency: topology is disconnected");
                     }
                     row[v] = static_cast<float>(dist[v]);
                   }
                 }
               });
  mem_.reset("topology.landmark", telemetry::vector_bytes(ms_) +
                                      telemetry::vector_bytes(landmarks_));
}

}  // namespace canon
