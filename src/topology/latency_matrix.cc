#include "topology/latency_matrix.h"

#include <limits>
#include <stdexcept>

#include "common/parallel.h"
#include "telemetry/scoped_timer.h"
#include "topology/landmark_latency.h"

namespace canon {

namespace {

/// Routers per shard: one Dijkstra over a ~2000-router graph costs far
/// more than a shard claim, so small shards give the best load balance.
constexpr std::size_t kSourceGrain = 8;

}  // namespace

LatencyMatrix::LatencyMatrix(const TransitStubTopology& topo)
    : n_(topo.router_count()) {
  telemetry::ScopedTimer timer("build.latency_matrix_ms");
  ms_.assign(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_),
             std::numeric_limits<float>::infinity());
  mem_.reset("topology.latency_matrix", telemetry::vector_bytes(ms_));
  // One Dijkstra per source router; each shard owns its sources' rows of
  // ms_, so the sharded runs write disjoint ranges and need no locks.
  parallel_for(
      static_cast<std::size_t>(n_), kSourceGrain,
      [&](std::size_t begin, std::size_t end) {
        std::vector<double> dist;
        for (std::size_t s = begin; s < end; ++s) {
          single_source_latencies(topo, static_cast<int>(s), dist);
          for (int v = 0; v < n_; ++v) {
            const double d = dist[static_cast<std::size_t>(v)];
            if (!(d < std::numeric_limits<double>::infinity())) {
              throw std::logic_error("LatencyMatrix: topology is disconnected");
            }
            ms_[s * static_cast<std::size_t>(n_) + static_cast<std::size_t>(v)] =
                static_cast<float>(d);
          }
        }
      });
}

}  // namespace canon
