#include "topology/latency_matrix.h"

#include <limits>
#include <queue>
#include <stdexcept>

namespace canon {

LatencyMatrix::LatencyMatrix(const TransitStubTopology& topo)
    : n_(topo.router_count()) {
  ms_.assign(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_),
             std::numeric_limits<float>::infinity());
  std::vector<double> dist(static_cast<std::size_t>(n_));
  using Item = std::pair<double, int>;  // (distance, router)
  for (int src = 0; src < n_; ++src) {
    std::fill(dist.begin(), dist.end(),
              std::numeric_limits<double>::infinity());
    dist[static_cast<std::size_t>(src)] = 0;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
    queue.emplace(0.0, src);
    while (!queue.empty()) {
      const auto [d, u] = queue.top();
      queue.pop();
      if (d > dist[static_cast<std::size_t>(u)]) continue;
      for (const auto& e : topo.edges(u)) {
        const double nd = d + e.ms;
        if (nd < dist[static_cast<std::size_t>(e.to)]) {
          dist[static_cast<std::size_t>(e.to)] = nd;
          queue.emplace(nd, e.to);
        }
      }
    }
    for (int v = 0; v < n_; ++v) {
      const double d = dist[static_cast<std::size_t>(v)];
      if (!(d < std::numeric_limits<double>::infinity())) {
        throw std::logic_error("LatencyMatrix: topology is disconnected");
      }
      ms_[static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
          static_cast<std::size_t>(v)] = static_cast<float>(d);
    }
  }
}

}  // namespace canon
