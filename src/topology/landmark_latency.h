// Landmark-based latency estimation for large router graphs.
//
// The full all-pairs matrix (latency_matrix.h) costs O(n^2) memory — fine
// for the paper's 2040-router topology, ruinous past ~10^4 routers. A
// LandmarkLatency keeps the exact matrix below `exact_threshold` routers
// (byte-identical to the historical behaviour, so every default-scale
// figure bench is unchanged) and switches to landmark triangulation above
// it: k deterministic landmarks, one Dijkstra per landmark, and
//
//   estimate(a, b) = min over landmarks l of d(l, a) + d(l, b)
//
// By the triangle inequality the estimate never underestimates the true
// shortest-path latency. Landmarks are all transit routers plus every
// `stub_stride`-th stub router — chosen without consuming any randomness,
// so the estimator is a pure function of the topology. Because stub
// domains connect to each other only through transit routers, any
// inter-domain shortest path passes through some transit landmark l, and
// for that l the bound is tight: inter-domain estimates are *exact*. Only
// intra-stub-domain pairs (a vanishing fraction of random pairs at scale)
// are overestimated, through the nearest stub landmark.
//
// Memory: k*n floats instead of n^2 — at 2*10^4 routers and ~10^3
// landmarks that is 80 MB instead of 1.6 GB.
#ifndef CANON_TOPOLOGY_LANDMARK_LATENCY_H
#define CANON_TOPOLOGY_LANDMARK_LATENCY_H

#include <limits>
#include <memory>
#include <vector>

#include "topology/latency_matrix.h"
#include "topology/transit_stub.h"

namespace canon {

/// Single-source shortest-path latencies from `src` over the router graph;
/// resizes and fills `dist` (router_count() entries). The Dijkstra core
/// shared by LatencyMatrix (one run per source) and LandmarkLatency (one
/// run per landmark).
void single_source_latencies(const TransitStubTopology& topo, int src,
                             std::vector<double>& dist);

struct LandmarkLatencyConfig {
  /// Router count at or below which the exact all-pairs matrix is kept.
  /// The default exceeds the paper's 2040-router topology, so every
  /// existing bench stays on the exact path bit for bit.
  int exact_threshold = 4096;
  /// In landmark mode, every stride-th stub router (by global stub index)
  /// becomes a landmark alongside all transit routers.
  int stub_stride = 16;
};

/// See the file comment. Exact below the threshold, landmark-triangulated
/// above it; `latency(a, b)` is the one query either way.
class LandmarkLatency {
 public:
  explicit LandmarkLatency(const TransitStubTopology& topo,
                           LandmarkLatencyConfig config = {});

  int router_count() const { return n_; }

  /// True when the exact all-pairs matrix backs latency().
  bool exact() const { return exact_ != nullptr; }

  /// Landmark routers in landmark mode (empty in exact mode).
  const std::vector<int>& landmarks() const { return landmarks_; }

  /// Shortest-path latency in ms between two routers (0 when a == b) —
  /// exact below the threshold, a never-underestimating triangulated
  /// upper bound above it.
  double latency(int a, int b) const {
    if (exact_) return exact_->latency(a, b);
    if (a == b) return 0.0;
    double best = std::numeric_limits<double>::infinity();
    const std::size_t n = static_cast<std::size_t>(n_);
    for (std::size_t l = 0; l < landmarks_.size(); ++l) {
      const float* row = ms_.data() + l * n;
      const double via = static_cast<double>(row[static_cast<std::size_t>(a)]) +
                         static_cast<double>(row[static_cast<std::size_t>(b)]);
      if (via < best) best = via;
    }
    return best;
  }

 private:
  int n_ = 0;
  std::unique_ptr<LatencyMatrix> exact_;  // exact mode only
  std::vector<int> landmarks_;            // landmark mode only
  std::vector<float> ms_;                 // k rows of n entries
  telemetry::MemCharge mem_;  // "topology.landmark" ledger holding
};

}  // namespace canon

#endif  // CANON_TOPOLOGY_LANDMARK_LATENCY_H
