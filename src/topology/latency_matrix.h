// All-pairs shortest-path latencies over a router graph, computed with one
// Dijkstra run per router. This is the *exact* backend used by
// LandmarkLatency (landmark_latency.h) for graphs at or below its
// exact_threshold (default 4096 routers; the paper's topology has 2040).
// Above the threshold the O(n^2) matrix no longer fits the memory budget
// and LandmarkLatency switches to landmark triangulation: k Dijkstra runs
// from deterministic landmarks and min-over-landmarks estimates that never
// underestimate the true latency (and are exact for every pair whose
// shortest path crosses a transit router — all inter-stub-domain pairs).
//
// The per-source runs are independent and execute on the shared worker
// pool (common/parallel.h); each source writes only its own matrix row, so
// the result is identical at every thread count. Construction time is
// recorded under build.latency_matrix_ms.
#ifndef CANON_TOPOLOGY_LATENCY_MATRIX_H
#define CANON_TOPOLOGY_LATENCY_MATRIX_H

#include <vector>

#include "telemetry/mem_stats.h"
#include "topology/transit_stub.h"

namespace canon {

class LatencyMatrix {
 public:
  explicit LatencyMatrix(const TransitStubTopology& topo);

  int router_count() const { return n_; }

  /// Shortest-path latency in ms between two routers (0 when a == b).
  /// Infinity never occurs: generated topologies are connected.
  double latency(int a, int b) const {
    return ms_[static_cast<std::size_t>(a) * static_cast<std::size_t>(n_) +
               static_cast<std::size_t>(b)];
  }

 private:
  int n_ = 0;
  std::vector<float> ms_;
  telemetry::MemCharge mem_;  // "topology.latency_matrix" ledger holding
};

}  // namespace canon

#endif  // CANON_TOPOLOGY_LATENCY_MATRIX_H
