// Transit-stub physical topology (Section 5.2 of the paper).
//
// The paper uses GT-ITM to generate a 2040-router transit-stub graph:
// routers split into transit domains of transit routers; a set of stub
// domains hangs off each transit router. Link latencies are fixed per
// class: transit-transit 100 ms, transit-stub 20 ms, stub-stub 5 ms (and
// 1 ms from an end host to its stub router). We generate the same family
// of graphs directly: the latency hierarchy — not GT-ITM's exact edge
// probability model — is what the stretch/locality results depend on.
//
// The topology induces the paper's natural five-level conceptual hierarchy
// for hosts: root / transit domain / transit router / stub domain / stub
// router.
#ifndef CANON_TOPOLOGY_TRANSIT_STUB_H
#define CANON_TOPOLOGY_TRANSIT_STUB_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "hierarchy/domain_path.h"

namespace canon {

struct TransitStubConfig {
  int transit_domains = 8;
  int transit_per_domain = 5;
  int stub_domains_per_transit = 5;
  int stubs_per_domain = 10;
  // 8*5 transit + 8*5*5*10 stub = 40 + 2000 = 2040 routers (paper's count).

  double transit_transit_ms = 100.0;
  double transit_stub_ms = 20.0;
  double stub_stub_ms = 5.0;
  double host_stub_ms = 1.0;

  /// Extra random transit-domain pair connections beyond the domain ring.
  int extra_domain_edges = 8;
  /// Extra random edges inside each transit domain / stub domain beyond
  /// the ring that guarantees connectivity, as a fraction of its size.
  double extra_edge_fraction = 0.3;
};

struct RouterInfo {
  bool is_transit = false;
  int transit_domain = 0;  ///< 0-based transit-domain index
  int transit_index = 0;   ///< transit router within its domain
  int stub_domain = -1;    ///< stub domain under the transit router (-1 if transit)
  int stub_index = -1;     ///< stub router within its stub domain
};

/// An undirected weighted router graph with transit-stub structure.
class TransitStubTopology {
 public:
  TransitStubTopology(const TransitStubConfig& config, Rng& rng);

  const TransitStubConfig& config() const { return config_; }
  int router_count() const { return static_cast<int>(routers_.size()); }
  const RouterInfo& router(int r) const {
    return routers_[static_cast<std::size_t>(r)];
  }

  struct Edge {
    int to = 0;
    double ms = 0;
  };
  const std::vector<Edge>& edges(int r) const {
    return adjacency_[static_cast<std::size_t>(r)];
  }

  /// All stub-router indices (hosts attach only to these).
  const std::vector<int>& stub_routers() const { return stub_routers_; }

  /// The conceptual-hierarchy path of a host attached to stub router `r`:
  /// (transit domain, transit router, stub domain, stub router).
  DomainPath host_hierarchy_path(int r) const;

 private:
  void add_edge(int a, int b, double ms);

  TransitStubConfig config_;
  std::vector<RouterInfo> routers_;
  std::vector<std::vector<Edge>> adjacency_;
  std::vector<int> stub_routers_;
};

}  // namespace canon

#endif  // CANON_TOPOLOGY_TRANSIT_STUB_H
