#include "topology/physical_network.h"

#include <stdexcept>

namespace canon {

double PhysicalNetwork::mean_host_latency(int samples, Rng& rng) const {
  const auto& stubs = topo_.stub_routers();
  if (stubs.size() < 2) throw std::logic_error("no stub routers");
  double total = 0;
  for (int i = 0; i < samples; ++i) {
    const int a = stubs[rng.uniform(stubs.size())];
    const int b = stubs[rng.uniform(stubs.size())];
    total += host_latency(a, b);
  }
  return total / samples;
}

OverlayNetwork make_physical_population(std::size_t count,
                                        const PhysicalNetwork& phys,
                                        int id_bits, Rng& rng) {
  const IdSpace space(id_bits);
  std::vector<NodeId> ids = sample_unique_ids(count, space, rng);
  const auto& stubs = phys.topology().stub_routers();
  // Structure-of-arrays assembly: attachment array plus the packed path
  // pool, never one OverlayNode (with its heap path) per host.
  DomainPathPool paths;
  paths.offsets.reserve(count + 1);
  std::vector<std::int32_t> attach(count);
  for (std::size_t i = 0; i < count; ++i) {
    const int stub = stubs[i % stubs.size()];
    attach[i] = stub;
    paths.push_back(phys.topology().host_hierarchy_path(stub).view());
  }
  return OverlayNetwork(space, std::move(ids), std::move(paths),
                        std::move(attach));
}

HopCost host_hop_cost(const OverlayNetwork& net, const PhysicalNetwork& phys) {
  return [&net, &phys](NodeIndex a, NodeIndex b) {
    return phys.host_latency(net.attach(a), net.attach(b));
  };
}

}  // namespace canon
