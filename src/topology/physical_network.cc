#include "topology/physical_network.h"

#include <stdexcept>

namespace canon {

double PhysicalNetwork::mean_host_latency(int samples, Rng& rng) const {
  const auto& stubs = topo_.stub_routers();
  if (stubs.size() < 2) throw std::logic_error("no stub routers");
  double total = 0;
  for (int i = 0; i < samples; ++i) {
    const int a = stubs[rng.uniform(stubs.size())];
    const int b = stubs[rng.uniform(stubs.size())];
    total += host_latency(a, b);
  }
  return total / samples;
}

OverlayNetwork make_physical_population(std::size_t count,
                                        const PhysicalNetwork& phys,
                                        int id_bits, Rng& rng) {
  const IdSpace space(id_bits);
  const auto ids = sample_unique_ids(count, space, rng);
  const auto& stubs = phys.topology().stub_routers();
  std::vector<OverlayNode> nodes(count);
  for (std::size_t i = 0; i < count; ++i) {
    const int stub = stubs[i % stubs.size()];
    nodes[i].id = ids[i];
    nodes[i].attach = stub;
    nodes[i].domain = phys.topology().host_hierarchy_path(stub);
  }
  return OverlayNetwork(space, std::move(nodes));
}

HopCost host_hop_cost(const OverlayNetwork& net, const PhysicalNetwork& phys) {
  return [&net, &phys](std::uint32_t a, std::uint32_t b) {
    return phys.host_latency(net.node(a).attach, net.node(b).attach);
  };
}

}  // namespace canon
