#include "telemetry/timeseries.h"

#include <cmath>
#include <stdexcept>

namespace canon::telemetry {

TimeSeriesRecorder::TimeSeriesRecorder(double window_ms)
    : window_ms_(window_ms) {
  if (!(window_ms > 0)) {
    throw std::invalid_argument("TimeSeriesRecorder: window_ms must be > 0");
  }
}

std::size_t TimeSeriesRecorder::window_index(double at_ms) const {
  if (at_ms <= 0) return 0;
  return static_cast<std::size_t>(at_ms / window_ms_);
}

TimeSeriesRecorder::Window& TimeSeriesRecorder::window_at(double at_ms) {
  const std::size_t w = window_index(at_ms);
  if (w >= windows_.size()) windows_.resize(w + 1);
  return windows_[w];
}

void TimeSeriesRecorder::lookup_issued(double at_ms) {
  ++window_at(at_ms).issued;
}

void TimeSeriesRecorder::lookup_completed(double at_ms, bool ok,
                                          double latency_ms) {
  Window& w = window_at(at_ms);
  ++w.completed;
  if (!ok) ++w.failures;
  w.latency_sum_ms += latency_ms;
}

void TimeSeriesRecorder::message(double at_ms, double queue_ms) {
  Window& w = window_at(at_ms);
  ++w.messages;
  w.queue_sum_ms += queue_ms;
}

void TimeSeriesRecorder::live_nodes(double at_ms, double live) {
  window_at(at_ms).live = live;
}

void TimeSeriesRecorder::rss_mb(double at_ms, double mb) {
  window_at(at_ms).rss = mb;
  has_rss_ = true;
}

JsonValue TimeSeriesRecorder::to_json() const {
  JsonValue rows = JsonValue::array();
  const double per_s = 1000.0 / window_ms_;
  double live = -1;  // carried forward; -1 until first reported
  double rss = -1;   // carried forward; -1 until first sampled
  for (std::size_t w = 0; w < windows_.size(); ++w) {
    const Window& win = windows_[w];
    if (win.live >= 0) live = win.live;
    if (win.rss >= 0) rss = win.rss;
    JsonValue row = JsonValue::object();
    row.set("t_ms", JsonValue(static_cast<double>(w) * window_ms_));
    row.set("issued_per_s",
            JsonValue(static_cast<double>(win.issued) * per_s));
    row.set("lookups_per_s",
            JsonValue(static_cast<double>(win.completed) * per_s));
    row.set("failures_per_s",
            JsonValue(static_cast<double>(win.failures) * per_s));
    row.set("messages_per_s",
            JsonValue(static_cast<double>(win.messages) * per_s));
    row.set("mean_latency_ms",
            JsonValue(win.completed > 0
                          ? win.latency_sum_ms /
                                static_cast<double>(win.completed)
                          : 0.0));
    row.set("mean_queue_ms",
            JsonValue(win.messages > 0
                          ? win.queue_sum_ms /
                                static_cast<double>(win.messages)
                          : 0.0));
    row.set("live_nodes", JsonValue(live));
    if (has_rss_) row.set("rss_mb", JsonValue(rss));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace canon::telemetry
