#include "telemetry/json_writer.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace canon::telemetry {

JsonValue::JsonValue(std::uint64_t v) : kind_(Kind::kNumber) {
  if (v <= static_cast<std::uint64_t>(INT64_MAX)) {
    is_int_ = true;
    int_ = static_cast<std::int64_t>(v);
  } else {
    double_ = static_cast<double>(v);
  }
}

JsonValue::JsonValue(double v) : kind_(Kind::kNumber) {
  // Keep exact small integers integral so counts serialize without ".0".
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    is_int_ = true;
    int_ = static_cast<std::int64_t>(v);
  } else {
    double_ = v;
  }
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw std::logic_error("JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) {
    throw std::logic_error("JsonValue: not a number");
  }
  return is_int_ ? static_cast<double>(int_) : double_;
}

std::int64_t JsonValue::as_int() const {
  if (kind_ != Kind::kNumber) {
    throw std::logic_error("JsonValue: not a number");
  }
  return is_int_ ? int_ : static_cast<std::int64_t>(double_);
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) {
    throw std::logic_error("JsonValue: not a string");
  }
  return string_;
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ != Kind::kArray) throw std::logic_error("JsonValue: not an array");
  array_.push_back(std::move(v));
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) throw std::logic_error("JsonValue: not an array");
  return array_;
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  throw std::logic_error("JsonValue: size() on scalar");
}

JsonValue& JsonValue::set(std::string_view key, JsonValue v) {
  if (kind_ != Kind::kObject) {
    throw std::logic_error("JsonValue: not an object");
  }
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  object_.emplace_back(std::string(key), std::move(v));
  return object_.back().second;
}

const JsonValue* JsonValue::get(std::string_view key) const {
  if (kind_ != Kind::kObject) {
    throw std::logic_error("JsonValue: not an object");
  }
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::kObject) {
    throw std::logic_error("JsonValue: not an object");
  }
  return object_;
}

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;  // UTF-8 bytes pass through untouched
        }
    }
  }
  os << '"';
}

namespace {

void write_number(std::ostream& os, bool is_int, std::int64_t i, double d) {
  if (is_int) {
    os << i;
    return;
  }
  if (!std::isfinite(d)) {
    os << "null";  // JSON has no Inf/NaN; emit null rather than garbage
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  os << buf;
}

void newline_indent(std::ostream& os, int indent, int depth) {
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}

}  // namespace

void JsonValue::write_indented(std::ostream& os, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: os << "null"; break;
    case Kind::kBool: os << (bool_ ? "true" : "false"); break;
    case Kind::kNumber: write_number(os, is_int_, int_, double_); break;
    case Kind::kString: write_json_string(os, string_); break;
    case Kind::kArray: {
      os << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) os << ',';
        if (indent) newline_indent(os, indent, depth + 1);
        array_[i].write_indented(os, indent, depth + 1);
      }
      if (indent && !array_.empty()) newline_indent(os, indent, depth);
      os << ']';
      break;
    }
    case Kind::kObject: {
      os << '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) os << ',';
        if (indent) newline_indent(os, indent, depth + 1);
        write_json_string(os, object_[i].first);
        os << ':';
        if (indent) os << ' ';
        object_[i].second.write_indented(os, indent, depth + 1);
      }
      if (indent && !object_.empty()) newline_indent(os, indent, depth);
      os << '}';
      break;
    }
  }
}

void JsonValue::write(std::ostream& os, int indent) const {
  write_indented(os, indent, 0);
}

std::string JsonValue::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("JsonValue::parse: " + std::string(what) +
                             " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return cp;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_utf8(out, parse_hex4()); break;
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_int = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_int = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") fail("bad number");
    if (is_int) {
      std::int64_t v = 0;
      const auto [p, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (ec == std::errc() && p == tok.data() + tok.size()) {
        return JsonValue(v);
      }
      // Fall through to double on overflow.
    }
    double d = 0;
    const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc() || p != tok.data() + tok.size()) fail("bad number");
    return JsonValue(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace canon::telemetry
