#include "telemetry/scoped_timer.h"

namespace canon::telemetry {

namespace {
SpanLog* g_span_log = nullptr;
}  // namespace

SpanLog::SpanLog() : epoch_(std::chrono::steady_clock::now()) {}

void SpanLog::add(std::string_view name,
                  std::chrono::steady_clock::time_point start,
                  std::uint64_t dur_ns) {
  SpanRecord rec;
  rec.name = std::string(name);
  const auto since_epoch = start - epoch_;
  rec.ts_us =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              since_epoch)
                              .count()) /
      1e3;
  if (rec.ts_us < 0) rec.ts_us = 0;  // span started before the log existed
  rec.dur_us = static_cast<double>(dur_ns) / 1e3;
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(rec));
}

std::vector<SpanRecord> SpanLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::size_t SpanLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

void SpanLog::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

SpanLog* span_log() { return g_span_log; }

SpanLog* install_span_log(SpanLog* log) {
  SpanLog* prev = g_span_log;
  g_span_log = log;
  return prev;
}

}  // namespace canon::telemetry
