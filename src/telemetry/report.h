// Machine-readable experiment reports.
//
// Every bench binary can emit, next to its human-readable table, a JSON
// report with the stable top-level schema
//
//   {
//     "bench":   "<binary name>",
//     "seed":    <u64>,
//     "params":  { "<flag>": <value>, ... },     // effective parameters
//     "metrics": {
//       "counters":   { "<name>": <u64>, ... },
//       "gauges":     { "<name>": <double>, ... },
//       "histograms": { "<name>": {count, total_ms, mean_ms, min_ms,
//                                  max_ms, p50_ms, p99_ms}, ... }
//     },
//     "series":  [ { ... }, ... ]                // bench-specific rows
//   }
//
// All four top-level keys are always present (empty objects/arrays when
// unused) so downstream diff tooling never needs existence checks. See
// docs/TELEMETRY.md for the schema contract and diffing workflow.
#ifndef CANON_TELEMETRY_REPORT_H
#define CANON_TELEMETRY_REPORT_H

#include <cstdint>
#include <string>
#include <string_view>

#include "telemetry/json_writer.h"
#include "telemetry/metrics.h"

namespace canon::telemetry {

class BenchReport {
 public:
  BenchReport(std::string bench_name, std::uint64_t seed);

  const std::string& bench_name() const { return bench_name_; }
  std::uint64_t seed() const { return seed_; }

  /// Records an effective parameter (flag value) under "params".
  void set_param(std::string_view name, JsonValue v);

  /// Records a top-level scalar under "metrics" (outside the registry
  /// sections), e.g. a bench-computed aggregate.
  void set_metric(std::string_view name, JsonValue v);

  /// Appends one row to "series".
  void add_row(JsonValue row);

  /// Replaces "series" wholesale (must be an array).
  void set_series(JsonValue series);

  /// Folds a registry snapshot into "metrics": counters, gauges and
  /// histogram summaries, keyed by instrument name.
  void merge_registry(const MetricsRegistry& reg);

  /// The complete document, schema as per the file comment.
  JsonValue to_json() const;

  /// Pretty-prints to `path`; throws std::runtime_error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  std::string bench_name_;
  std::uint64_t seed_;
  JsonValue params_ = JsonValue::object();
  JsonValue metrics_ = JsonValue::object();
  JsonValue series_ = JsonValue::array();
};

/// Summary object for one histogram (the "histograms" values above).
JsonValue histogram_to_json(const LatencyHistogram& h);

}  // namespace canon::telemetry

#endif  // CANON_TELEMETRY_REPORT_H
