// Metrics registry for the experiment and simulation stack.
//
// Instrumented code paths (routers, the event simulator, construction and
// maintenance phases) record into named Counter / Gauge / LatencyHistogram
// instruments owned by a MetricsRegistry. The registry is opt-in: when no
// registry is installed (install_registry(nullptr), the default), every
// maybe_* accessor returns nullptr and instrumented code degrades to a
// single pointer test per event — no allocation, no lookup, no recording.
//
// Hot-path contract: Counter::inc, Gauge::set and LatencyHistogram::record_*
// never allocate. Name lookup (MetricsRegistry::counter etc.) may allocate
// on first use of a name; instrumented classes are expected to resolve
// their instruments once (at construction) and keep the pointers, which
// remain stable for the registry's lifetime (node-based map).
//
// Thread-safety: none. The whole library is single-threaded by design
// (see docs/TELEMETRY.md); guard externally if that ever changes.
#ifndef CANON_TELEMETRY_METRICS_H
#define CANON_TELEMETRY_METRICS_H

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace canon::telemetry {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins scalar (sizes, rates, configuration echoes).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket log-scale duration histogram.
///
/// Bucket 0 holds exact-zero durations; bucket i (i >= 1) holds durations
/// in [2^(i-1), 2^i) nanoseconds. Durations of 2^(kBuckets-1) ns and above
/// do not fit any bucket and are tallied in an explicit overflow count
/// (still included in count/sum/min/max) rather than silently clamped
/// into the top bucket — reports expose it so saturation is visible. The
/// bucket layout is compile-time fixed so record_ns is allocation-free and
/// two histograms from different runs are always comparable bucket by
/// bucket.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  void record_ns(std::uint64_t ns) {
    const int idx = ns == 0 ? 0 : std::bit_width(ns);
    if (idx < kBuckets) {
      ++buckets_[static_cast<std::size_t>(idx)];
    } else {
      ++overflow_;
    }
    ++count_;
    sum_ns_ += ns;
    if (count_ == 1 || ns < min_ns_) min_ns_ = ns;
    if (count_ == 1 || ns > max_ns_) max_ns_ = ns;
  }
  void record_ms(double ms) {
    record_ns(ms <= 0 ? 0 : static_cast<std::uint64_t>(ms * 1e6));
  }

  std::uint64_t count() const { return count_; }
  double total_ms() const { return static_cast<double>(sum_ns_) / 1e6; }
  /// Mean in milliseconds; 0 when empty.
  double mean_ms() const;
  /// Min/max in milliseconds; 0 when empty.
  double min_ms() const { return count_ ? static_cast<double>(min_ns_) / 1e6 : 0; }
  double max_ms() const { return count_ ? static_cast<double>(max_ns_) / 1e6 : 0; }

  /// Bucket index for a duration: 0 for 0ns, else floor(log2(ns)) + 1,
  /// clamped to the last bucket.
  static int bucket_index(std::uint64_t ns);
  /// Inclusive lower bound of bucket `i` in nanoseconds.
  static std::uint64_t bucket_floor_ns(int i);
  std::uint64_t bucket_count(int i) const {
    return buckets_[static_cast<std::size_t>(i)];
  }
  /// Samples too large for any bucket (>= 2^(kBuckets-1) ns).
  std::uint64_t overflow_count() const { return overflow_; }

  /// Upper-bound quantile estimate (ms) from the bucket histogram: the
  /// exclusive upper edge of the bucket containing the q-th sample.
  /// `q` in [0,1]; 0 when empty.
  double quantile_upper_ms(double q) const;

  void merge(const LatencyHistogram& other);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ns_ = 0;
  std::uint64_t min_ns_ = 0;
  std::uint64_t max_ns_ = 0;
};

/// Owns named instruments. References returned by counter()/gauge()/
/// histogram() stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyHistogram& histogram(std::string_view name);

  /// Snapshot views, sorted by name (stable report ordering).
  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, LatencyHistogram, std::less<>>& histograms()
      const {
    return histograms_;
  }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, LatencyHistogram, std::less<>> histograms_;
};

/// The process-wide registry, or nullptr when telemetry is off (default).
MetricsRegistry* registry();

/// Installs `r` as the process-wide registry (caller keeps ownership);
/// nullptr turns telemetry off again. Returns the previous registry.
MetricsRegistry* install_registry(MetricsRegistry* r);

/// Instrument accessors for hot paths: resolve once, keep the pointer,
/// test for null per event.
inline Counter* maybe_counter(std::string_view name) {
  MetricsRegistry* r = registry();
  return r ? &r->counter(name) : nullptr;
}
inline Gauge* maybe_gauge(std::string_view name) {
  MetricsRegistry* r = registry();
  return r ? &r->gauge(name) : nullptr;
}
inline LatencyHistogram* maybe_histogram(std::string_view name) {
  MetricsRegistry* r = registry();
  return r ? &r->histogram(name) : nullptr;
}

}  // namespace canon::telemetry

#endif  // CANON_TELEMETRY_METRICS_H
