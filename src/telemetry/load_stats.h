// Per-node load accounting: the paper's §5 load and fault-isolation claims
// as measured numbers.
//
// A LoadAccountant tallies, for every routed lookup, which nodes handled
// the message and in which role (source, intermediate relay, terminal),
// which key was looked up, at which hierarchy level each hop travelled,
// and whether the hop stayed inside a level-L domain. From those tallies
// it reports the load distribution (mean, max, Gini coefficient), the
// top-k hotspot nodes and keys, per-level and per-domain traffic shares,
// and the *domain-confinement ratio*: of the lookups whose source and
// terminal share a level-L domain, the fraction whose entire path stayed
// inside that domain. Canon's §5 claim is that this ratio is 1.0 — an
// intra-domain lookup never leaves its domain, so a remote failure cannot
// disturb it.
//
// Determinism contract: the batch QueryEngine routes over fixed query
// shards; each shard accumulates into its own LoadAccountant::Shard and
// the engine merges them in fixed shard order 0..S-1 after the barrier.
// Every tally is an integer sum and every derived figure is a pure
// function of the merged tallies, so a load report is byte-identical at
// any --threads (see docs/PERFORMANCE.md).
//
// Invariants (with `queries` observed lookups and `total_hops` hops):
//   sum(load)        == total_hops + queries   (one handling per path node)
//   sum(as_source)   == queries
//   sum(as_terminal) == queries
//   sum(hops_by_level) == total_hops           (every hop has an LCA level)
// A single-node path (the source already owns the key) counts one message
// handled, in both the source and terminal roles.
#ifndef CANON_TELEMETRY_LOAD_STATS_H
#define CANON_TELEMETRY_LOAD_STATS_H

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "hierarchy/domain_tree.h"
#include "telemetry/json_writer.h"

namespace canon::telemetry {

/// Gini coefficient of a load vector: 0 = perfectly even, -> 1 as all
/// load concentrates on one node. 0 on empty or all-zero input.
double gini_coefficient(std::span<const std::uint64_t> loads);

/// One node's aggregate load, for top-k reporting.
struct NodeLoad {
  std::uint32_t node = 0;   ///< node index
  std::uint64_t id = 0;     ///< overlay ID (0 when unknown)
  std::uint64_t total = 0;  ///< messages handled
  std::uint64_t as_source = 0;
  std::uint64_t as_relay = 0;
  std::uint64_t as_terminal = 0;
};

/// One key's popularity, for hotspot reporting.
struct KeyLoad {
  std::uint64_t key = 0;
  std::uint64_t lookups = 0;
};

/// One level-L domain's share of the routed traffic.
struct DomainLoad {
  int domain = -1;           ///< DomainTree domain index
  std::string label;         ///< dotted branch path, e.g. "3" or "3.2"
  std::size_t members = 0;   ///< nodes in the domain
  std::uint64_t hops_inside = 0;  ///< hops with both endpoints inside
  double share = 0;          ///< hops_inside / total_hops (0 when no hops)
};

/// Top-k loaded nodes over a plain per-node load vector (ties broken by
/// ascending node index). Shared by the accountant and the event
/// simulator's journal snapshots.
std::vector<std::pair<std::uint32_t, std::uint64_t>> top_loaded_nodes(
    std::span<const std::uint64_t> loads, std::size_t k);

/// See the file comment.
class LoadAccountant {
 public:
  /// Accounts against the hierarchy in `tree`; `ids` (parallel to node
  /// indices, may be empty) labels hotspot nodes with their overlay IDs.
  /// `domain_level` selects which hierarchy level the per-domain shares
  /// and the confinement ratio are measured at (1 = the children of the
  /// root, the paper's "domains").
  explicit LoadAccountant(const DomainTree& tree,
                          std::span<const std::uint64_t> ids = {},
                          int domain_level = 1);

  /// Per-shard scratch: plain tallies, cheap to create per query shard.
  /// Only LoadAccountant reads or writes its internals.
  struct Shard {
    std::vector<std::uint64_t> touches;  ///< node << 3 | role bits
    std::vector<std::uint64_t> keys;     ///< one looked-up key per query
    std::vector<std::uint64_t> hops_by_level;
    std::vector<std::uint64_t> domain_hops;  ///< dense per level-L domain
    std::uint64_t queries = 0;
    std::uint64_t ok = 0;
    std::uint64_t total_hops = 0;
    std::uint64_t intra_queries = 0;
    std::uint64_t confined_queries = 0;
  };

  /// Observes one routed query: `path` is the hop-by-hop node sequence
  /// (source first; a route that never left the source is a single-element
  /// path), `ok` whether it reached the responsible node, `key` the
  /// looked-up key. Thread-safe across distinct shards (this object is
  /// only read).
  void observe(std::span<const std::uint32_t> path, bool ok,
               std::uint64_t key, Shard& shard) const;

  /// Folds one shard's tallies in; the engine calls this in fixed shard
  /// order after its merge barrier. (Every tally is an integer sum, so
  /// any order yields identical results — the fixed order keeps the
  /// reasoning trivial.)
  void merge(const Shard& shard);

  // ---- aggregate accessors (all O(1) unless noted) ----
  std::size_t node_count() const { return load_.size(); }
  std::uint64_t queries() const { return queries_; }
  std::uint64_t ok() const { return ok_; }
  std::uint64_t total_hops() const { return total_hops_; }
  int domain_level() const { return domain_level_; }

  /// Messages handled per node (one per path appearance).
  const std::vector<std::uint64_t>& load() const { return load_; }
  const std::vector<std::uint64_t>& as_source() const { return source_; }
  const std::vector<std::uint64_t>& as_relay() const { return relay_; }
  const std::vector<std::uint64_t>& as_terminal() const { return terminal_; }

  /// Hop counts by LCA level of the hop's endpoints (index = level).
  const std::vector<std::uint64_t>& hops_by_level() const {
    return hops_by_level_;
  }

  double mean_load() const;
  std::uint64_t max_load() const;
  /// max/mean (0 on an empty accountant): the homogeneity headline.
  double max_mean_ratio() const;
  /// O(n log n).
  double gini() const { return gini_coefficient(load_); }

  /// O(n log n) / O(k log k): deterministic (count desc, index/key asc).
  std::vector<NodeLoad> top_nodes(std::size_t k) const;
  std::vector<KeyLoad> top_keys(std::size_t k) const;

  /// Per-domain traffic at the configured level, in DomainTree order.
  std::vector<DomainLoad> domain_loads() const;

  /// Lookups whose source and terminal share a level-L domain, and how
  /// many of those never left it. ratio() is 1.0 when intra == 0 (the
  /// claim is vacuously true on a flat population).
  std::uint64_t intra_domain_queries() const { return intra_queries_; }
  std::uint64_t confined_queries() const { return confined_queries_; }
  double confinement_ratio() const;

  /// The full "load" report section (schema in docs/TELEMETRY.md):
  /// {queries, ok, total_hops, domain_level, load{mean,max,max_mean,gini},
  ///  top_nodes[], top_keys[], hops_by_level[], domains[],
  ///  confinement{intra,confined,ratio}}. Pure function of the merged
  /// integer tallies: byte-identical at any thread count.
  JsonValue to_json(std::size_t top_k = 10) const;

 private:
  static constexpr std::uint64_t kSourceBit = 1;
  static constexpr std::uint64_t kRelayBit = 2;
  static constexpr std::uint64_t kTerminalBit = 4;
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  int lca_level(std::uint32_t a, std::uint32_t b) const;

  const DomainTree* tree_;
  std::vector<std::uint64_t> ids_;   // overlay IDs for labels (may be empty)
  int domain_level_;
  std::vector<std::uint32_t> slot_;  // node -> dense level-L domain slot
  std::vector<int> slot_domain_;     // slot -> DomainTree domain index

  std::vector<std::uint64_t> load_;
  std::vector<std::uint64_t> source_;
  std::vector<std::uint64_t> relay_;
  std::vector<std::uint64_t> terminal_;
  std::vector<std::uint64_t> hops_by_level_;
  std::vector<std::uint64_t> domain_hops_;  // dense per slot
  std::unordered_map<std::uint64_t, std::uint64_t> key_counts_;
  std::uint64_t queries_ = 0;
  std::uint64_t ok_ = 0;
  std::uint64_t total_hops_ = 0;
  std::uint64_t intra_queries_ = 0;
  std::uint64_t confined_queries_ = 0;
};

}  // namespace canon::telemetry

#endif  // CANON_TELEMETRY_LOAD_STATS_H
