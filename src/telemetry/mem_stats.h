// Per-subsystem memory attribution: the resource observatory's ledger.
//
// A MemoryAccountant tallies explicit byte charges under subsystem tags
// ("link_table.csr", "hierarchy.path_pool", "query.scratch", ...) and
// tracks, per tag and for the process, the current outstanding bytes and
// the high-water peak. Unlike the process-wide getrusage high-water mark,
// the ledger answers *which structure owns the bytes* — the prerequisite
// for attacking 10^7-node populations (see docs/TELEMETRY.md §10 and the
// reconciliation walkthrough in docs/PERFORMANCE.md).
//
// Like the metrics registry the accountant is opt-in: with none installed
// (install_mem_accountant(nullptr), the default) every charge site pays a
// single pointer test. Charging helpers:
//
//   - MemScope: RAII transient charge — charges on construction / add(),
//     releases everything on destruction. For build-phase scratch whose
//     lifetime is a lexical scope (LinkTable row staging, per-shard query
//     scratch).
//   - MemCharge: a member object for long-lived structures (CSR arrays,
//     SoA metadata, latency matrices). Charges on reset(), transfers on
//     move, re-charges on copy, releases on destruction.
//
// Determinism contract: the accountant is single-threaded like the rest
// of the telemetry layer. Instrumented parallel phases charge only on the
// calling thread at deterministic points — after the fork/join barrier, in
// fixed shard order — and every figure in to_json() is a pure function of
// the charge sequence, so a resource report is byte-identical at any
// --threads (tests/resource_stats_test.cc pins {1,2,7}).
//
// The header also hosts the process RSS probes: current_rss_mb() (VmRSS
// from /proc/self/status, with /proc/self/statm and getrusage fallbacks)
// and peak_rss_mb() (getrusage high-water). Attributed bytes vs. measured
// RSS growth reconcile to >= 90% at scale (tests/resource_stats_test.cc).
#ifndef CANON_TELEMETRY_MEM_STATS_H
#define CANON_TELEMETRY_MEM_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/json_writer.h"

namespace canon::telemetry {

/// See the file comment.
class MemoryAccountant {
 public:
  struct TagStats {
    std::uint64_t current = 0;  ///< outstanding bytes
    std::uint64_t peak = 0;     ///< high-water outstanding bytes
    std::uint64_t charges = 0;  ///< number of account() calls
  };

  /// Charges `bytes` against `tag`, raising the tag and process peaks.
  void account(std::string_view tag, std::uint64_t bytes);

  /// Releases `bytes` from `tag`. Over-release clamps to zero (a charge
  /// site that outlives the accountant's install window must not corrupt
  /// the ledger); peaks are never lowered.
  void release(std::string_view tag, std::uint64_t bytes);

  /// Process-wide outstanding / high-water bytes (sums over tags as of
  /// each charge, so the process peak sees concurrent tags together).
  std::uint64_t current_bytes() const { return current_; }
  std::uint64_t peak_bytes() const { return peak_; }

  /// Per-tag ledger, sorted by tag name (stable report ordering).
  const std::map<std::string, TagStats, std::less<>>& tags() const {
    return tags_;
  }
  bool empty() const { return tags_.empty(); }
  void clear();

  /// The "memory" report section (schema in docs/TELEMETRY.md §10):
  /// {attributed{current_bytes,peak_bytes},
  ///  tags{<tag>: {current_bytes,peak_bytes,charges}, ...}}.
  /// Pure function of the charge sequence: byte-identical at any
  /// --threads. Measured RSS is deliberately *not* part of this object —
  /// callers append it separately so determinism checks can strip it.
  JsonValue to_json() const;

 private:
  std::map<std::string, TagStats, std::less<>> tags_;
  std::uint64_t current_ = 0;
  std::uint64_t peak_ = 0;
};

/// The process-wide accountant, or nullptr when accounting is off (the
/// default). install_mem_accountant(nullptr) turns accounting off again;
/// the caller keeps ownership. Returns the previous accountant.
MemoryAccountant* mem_accountant();
MemoryAccountant* install_mem_accountant(MemoryAccountant* a);

/// RAII transient charge: everything charged through this scope is
/// released when it dies. No-op when no accountant is installed.
class MemScope {
 public:
  /// `tag` must outlive the scope (every caller passes a literal).
  explicit MemScope(std::string_view tag, std::uint64_t bytes = 0)
      : tag_(tag) {
    add(bytes);
  }
  MemScope(const MemScope&) = delete;
  MemScope& operator=(const MemScope&) = delete;
  ~MemScope() { release_all(); }

  /// Charges `bytes` more against the scope's tag.
  void add(std::uint64_t bytes) {
    if (bytes == 0) return;
    if (MemoryAccountant* a = mem_accountant()) {
      a->account(tag_, bytes);
      held_ += bytes;
    }
  }

  /// Releases everything now (idempotent; the destructor then no-ops).
  void release_all() {
    if (held_ != 0) {
      if (MemoryAccountant* a = mem_accountant()) a->release(tag_, held_);
      held_ = 0;
    }
  }

  std::uint64_t held() const { return held_; }

 private:
  std::string_view tag_;
  std::uint64_t held_ = 0;
};

/// Long-lived charge held as a member of the owning structure. Default
/// construction holds nothing; reset() charges the structure's current
/// footprint (releasing any previous holding first). Move transfers the
/// holding; copy re-charges the same bytes (the copy owns its own charge);
/// destruction releases. All operations no-op when no accountant is
/// installed at the time they run — a structure built before the
/// accountant existed simply stays off the ledger.
class MemCharge {
 public:
  MemCharge() = default;
  MemCharge(std::string_view tag, std::uint64_t bytes) { reset(tag, bytes); }

  MemCharge(const MemCharge& other) { reset(other.tag_, other.held_); }
  MemCharge& operator=(const MemCharge& other) {
    if (this != &other) reset(other.tag_, other.held_);
    return *this;
  }
  MemCharge(MemCharge&& other) noexcept
      : tag_(std::move(other.tag_)), held_(other.held_) {
    other.held_ = 0;
    other.tag_.clear();
  }
  MemCharge& operator=(MemCharge&& other) noexcept {
    if (this != &other) {
      drop();
      tag_ = std::move(other.tag_);
      held_ = other.held_;
      other.held_ = 0;
      other.tag_.clear();
    }
    return *this;
  }
  ~MemCharge() { drop(); }

  /// Replaces the holding: releases the previous bytes, charges `bytes`
  /// under `tag`. Holds nothing if no accountant is installed.
  void reset(std::string_view tag, std::uint64_t bytes) {
    drop();
    if (bytes == 0) return;
    if (MemoryAccountant* a = mem_accountant()) {
      a->account(tag, bytes);
      tag_ = tag;
      held_ = bytes;
    }
  }

  /// Releases the holding now.
  void drop() {
    if (held_ != 0) {
      if (MemoryAccountant* a = mem_accountant()) a->release(tag_, held_);
      held_ = 0;
      tag_.clear();
    }
  }

  std::uint64_t held() const { return held_; }

 private:
  std::string tag_;
  std::uint64_t held_ = 0;
};

/// Allocated bytes of a vector's backing store (capacity, not size — the
/// allocator really holds capacity() * sizeof(T)).
template <class T, class A>
std::uint64_t vector_bytes(const std::vector<T, A>& v) {
  return static_cast<std::uint64_t>(v.capacity()) * sizeof(T);
}

// ---- process RSS probes ----

/// Resident set size right now, in MB. Reads VmRSS from /proc/self/status,
/// falling back to /proc/self/statm, then to the getrusage high-water mark
/// (the best remaining signal on systems without procfs). Returns 0 when
/// nothing is available.
double current_rss_mb();

/// Process high-water RSS in MB (getrusage ru_maxrss). Monotone over the
/// process lifetime: a later, smaller working set does NOT lower it — pair
/// with current_rss_mb() when a point-in-time figure is wanted.
double peak_rss_mb();

}  // namespace canon::telemetry

#endif  // CANON_TELEMETRY_MEM_STATS_H
