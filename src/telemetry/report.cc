#include "telemetry/report.h"

#include <fstream>
#include <stdexcept>
#include <utility>

namespace canon::telemetry {

BenchReport::BenchReport(std::string bench_name, std::uint64_t seed)
    : bench_name_(std::move(bench_name)), seed_(seed) {}

void BenchReport::set_param(std::string_view name, JsonValue v) {
  params_.set(name, std::move(v));
}

void BenchReport::set_metric(std::string_view name, JsonValue v) {
  metrics_.set(name, std::move(v));
}

void BenchReport::add_row(JsonValue row) { series_.push_back(std::move(row)); }

void BenchReport::set_series(JsonValue series) {
  if (!series.is_array()) {
    throw std::logic_error("BenchReport::set_series: not an array");
  }
  series_ = std::move(series);
}

JsonValue histogram_to_json(const LatencyHistogram& h) {
  JsonValue o = JsonValue::object();
  o.set("count", JsonValue(h.count()));
  o.set("total_ms", JsonValue(h.total_ms()));
  o.set("mean_ms", JsonValue(h.mean_ms()));
  o.set("min_ms", JsonValue(h.min_ms()));
  o.set("max_ms", JsonValue(h.max_ms()));
  o.set("p50_ms", JsonValue(h.quantile_upper_ms(0.5)));
  o.set("p99_ms", JsonValue(h.quantile_upper_ms(0.99)));
  o.set("overflow", JsonValue(h.overflow_count()));
  return o;
}

void BenchReport::merge_registry(const MetricsRegistry& reg) {
  JsonValue counters = JsonValue::object();
  for (const auto& [name, c] : reg.counters()) {
    counters.set(name, JsonValue(c.value()));
  }
  metrics_.set("counters", std::move(counters));

  JsonValue gauges = JsonValue::object();
  for (const auto& [name, g] : reg.gauges()) {
    gauges.set(name, JsonValue(g.value()));
  }
  metrics_.set("gauges", std::move(gauges));

  JsonValue hists = JsonValue::object();
  for (const auto& [name, h] : reg.histograms()) {
    hists.set(name, histogram_to_json(h));
  }
  metrics_.set("histograms", std::move(hists));
}

JsonValue BenchReport::to_json() const {
  JsonValue doc = JsonValue::object();
  doc.set("bench", JsonValue(bench_name_));
  doc.set("seed", JsonValue(seed_));
  doc.set("params", params_);
  doc.set("metrics", metrics_);
  doc.set("series", series_);
  return doc;
}

void BenchReport::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("BenchReport: cannot open " + path);
  }
  to_json().write(out, 2);
  out << '\n';
  if (!out) {
    throw std::runtime_error("BenchReport: write failed for " + path);
  }
}

}  // namespace canon::telemetry
