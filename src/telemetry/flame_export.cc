#include "telemetry/flame_export.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace canon::telemetry {

std::vector<FlameNode> build_flame_tree(std::vector<SpanRecord> spans) {
  // Sort by start ascending; on equal starts the longer span first, so a
  // parent that opened in the same microsecond tick precedes its child.
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
              return a.name < b.name;
            });

  std::vector<FlameNode> tree;
  tree.reserve(spans.size());
  // Stack of indices of the open enclosing spans, innermost last.
  std::vector<int> open;
  for (SpanRecord& s : spans) {
    // Pop spans that ended before this one starts. A tiny tolerance
    // absorbs clock rounding: a child whose recorded end exceeds the
    // parent's by < 1µs still nests.
    while (!open.empty()) {
      const SpanRecord& top = tree[static_cast<std::size_t>(open.back())].span;
      if (s.ts_us + 1e-3 < top.ts_us + top.dur_us) break;
      open.pop_back();
    }
    FlameNode node;
    node.span = std::move(s);
    node.parent = open.empty() ? -1 : open.back();
    const int idx = static_cast<int>(tree.size());
    if (node.parent >= 0) {
      tree[static_cast<std::size_t>(node.parent)].children.push_back(idx);
    }
    tree.push_back(std::move(node));
    open.push_back(idx);
  }

  for (FlameNode& node : tree) {
    double children_us = 0;
    for (int c : node.children) {
      children_us += tree[static_cast<std::size_t>(c)].span.dur_us;
    }
    node.self_us = std::max(0.0, node.span.dur_us - children_us);
  }
  return tree;
}

std::string collapse_flame_tree(const std::vector<FlameNode>& tree) {
  // Aggregate identical paths (repeated phases — per-shard spans, retries)
  // into one line with summed self time, keeping first-occurrence order.
  std::vector<std::string> order;
  std::map<std::string, double, std::less<>> by_path;
  std::vector<const std::string*> path;
  for (std::size_t i = 0; i < tree.size(); ++i) {
    if (tree[i].self_us <= 0) continue;
    path.clear();
    for (int at = static_cast<int>(i); at >= 0;
         at = tree[static_cast<std::size_t>(at)].parent) {
      path.push_back(&tree[static_cast<std::size_t>(at)].span.name);
    }
    std::string key;
    for (std::size_t p = path.size(); p-- > 0;) {
      key += *path[p];
      if (p != 0) key += ';';
    }
    auto [it, inserted] = by_path.try_emplace(std::move(key), 0.0);
    if (inserted) order.push_back(it->first);
    it->second += tree[i].self_us;
  }
  std::ostringstream out;
  for (const std::string& key : order) {
    const auto count =
        static_cast<std::uint64_t>(std::llround(by_path[key]));
    if (count == 0) continue;
    out << key << ' ' << count << '\n';
  }
  return out.str();
}

JsonValue flame_phase_table(const std::vector<FlameNode>& tree) {
  struct Agg {
    std::uint64_t count = 0;
    double total_us = 0;
    double self_us = 0;
  };
  std::map<std::string, Agg, std::less<>> by_name;
  for (const FlameNode& node : tree) {
    Agg& a = by_name[node.span.name];
    ++a.count;
    a.total_us += node.span.dur_us;
    a.self_us += node.self_us;
  }
  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(),
                                                by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.self_us != b.second.self_us) {
      return a.second.self_us > b.second.self_us;
    }
    return a.first < b.first;
  });
  JsonValue table = JsonValue::array();
  for (const auto& [name, a] : rows) {
    JsonValue row = JsonValue::object();
    row.set("name", JsonValue(name));
    row.set("count", JsonValue(a.count));
    row.set("total_us", JsonValue(a.total_us));
    row.set("self_us", JsonValue(a.self_us));
    table.push_back(std::move(row));
  }
  return table;
}

std::size_t write_collapsed_stacks(const SpanLog& log,
                                   const std::string& path) {
  const std::vector<FlameNode> tree = build_flame_tree(log.snapshot());
  const std::string text = collapse_flame_tree(tree);
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("flame_export: cannot open " + path);
  }
  out << text;
  if (!out) {
    throw std::runtime_error("flame_export: write failed for " + path);
  }
  return static_cast<std::size_t>(
      std::count(text.begin(), text.end(), '\n'));
}

}  // namespace canon::telemetry
