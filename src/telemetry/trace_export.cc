#include "telemetry/trace_export.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace canon::telemetry {

namespace {

JsonValue metadata_event(std::string_view which, int pid, int tid,
                         std::string_view name) {
  JsonValue ev = JsonValue::object();
  ev.set("name", JsonValue(which));
  ev.set("ph", JsonValue("M"));
  ev.set("pid", JsonValue(static_cast<std::int64_t>(pid)));
  ev.set("tid", JsonValue(static_cast<std::int64_t>(tid)));
  JsonValue args = JsonValue::object();
  args.set("name", JsonValue(name));
  ev.set("args", std::move(args));
  return ev;
}

std::string hex_key(std::uint64_t key) {
  std::ostringstream os;
  os << "0x" << std::hex << key;
  return os.str();
}

}  // namespace

void TraceExporter::set_process_name(int pid, std::string_view name) {
  events_.push_back(metadata_event("process_name", pid, 0, name));
}

void TraceExporter::set_thread_name(int pid, int tid, std::string_view name) {
  events_.push_back(metadata_event("thread_name", pid, tid, name));
}

void TraceExporter::add_complete(std::string_view name,
                                 std::string_view category, double ts_us,
                                 double dur_us, int pid, int tid,
                                 JsonValue args) {
  JsonValue ev = JsonValue::object();
  ev.set("name", JsonValue(name));
  ev.set("cat", JsonValue(category));
  ev.set("ph", JsonValue("X"));
  ev.set("ts", JsonValue(ts_us));
  ev.set("dur", JsonValue(dur_us));
  ev.set("pid", JsonValue(static_cast<std::int64_t>(pid)));
  ev.set("tid", JsonValue(static_cast<std::int64_t>(tid)));
  if (args.is_object()) ev.set("args", std::move(args));
  events_.push_back(std::move(ev));
}

void TraceExporter::add_counter(std::string_view name, double ts_us,
                                double value, int pid) {
  JsonValue ev = JsonValue::object();
  ev.set("name", JsonValue(name));
  ev.set("ph", JsonValue("C"));
  ev.set("ts", JsonValue(ts_us));
  ev.set("pid", JsonValue(static_cast<std::int64_t>(pid)));
  JsonValue args = JsonValue::object();
  args.set("value", JsonValue(value));
  ev.set("args", std::move(args));
  events_.push_back(std::move(ev));
}

void TraceExporter::add_span_log(const SpanLog& log, int pid) {
  for (const SpanRecord& span : log.snapshot()) {
    add_complete(span.name, "phase", span.ts_us, span.dur_us, pid, 0);
  }
}

void TraceExporter::add_lookup_traces(const RecordingTraceSink& sink,
                                      std::size_t max_lookups, int pid) {
  const auto& lookups = sink.lookups();
  const std::size_t take = std::min(max_lookups, lookups.size());
  for (std::size_t i = 0; i < take; ++i) {
    const auto& lk = lookups[i];
    const int tid = static_cast<int>(i) + 1;
    // Real event-simulator timing when any hop carries it; otherwise a
    // synthetic 1µs-per-hop timeline so hop order is still visible.
    const bool timed =
        std::any_of(lk.hops.begin(), lk.hops.end(), [](const HopRecord& h) {
          return h.queue_ms > 0 || h.hop_ms > 0;
        });
    double t_us = 0;
    for (const HopRecord& hop : lk.hops) {
      const double dur_us =
          timed ? std::max((hop.queue_ms + hop.hop_ms) * 1e3, 0.001) : 1.0;
      JsonValue args = JsonValue::object();
      args.set("from", JsonValue(static_cast<std::uint64_t>(hop.from)));
      args.set("to", JsonValue(static_cast<std::uint64_t>(hop.to)));
      args.set("level", JsonValue(static_cast<std::int64_t>(hop.level)));
      args.set("candidates",
               JsonValue(static_cast<std::uint64_t>(hop.candidates)));
      if (timed) {
        args.set("queue_ms", JsonValue(hop.queue_ms));
        args.set("hop_ms", JsonValue(hop.hop_ms));
      }
      std::string name = "hop " + std::to_string(hop.from) + "->" +
                         std::to_string(hop.to);
      add_complete(name, "hop", t_us, dur_us, pid, tid, std::move(args));
      t_us += dur_us;
    }
    // Enclosing slice for the whole lookup (emitted after its hops so the
    // viewer nests the hops beneath it regardless of insertion order).
    JsonValue args = JsonValue::object();
    args.set("from", JsonValue(static_cast<std::uint64_t>(lk.from)));
    args.set("key", JsonValue(hex_key(lk.key)));
    args.set("ok", JsonValue(lk.ok));
    args.set("terminal", JsonValue(static_cast<std::uint64_t>(lk.terminal)));
    args.set("hops",
             JsonValue(static_cast<std::uint64_t>(lk.hops.size())));
    std::string name = "lookup " + hex_key(lk.key);
    add_complete(name, "lookup", 0, std::max(t_us, 1.0), pid, tid,
                 std::move(args));
    set_thread_name(pid, tid, "lookup #" + std::to_string(i));
  }
}

void TraceExporter::add_timeseries(const TimeSeriesRecorder& series, int pid) {
  const double window_us = series.window_ms() * 1e3;
  double live = -1;
  const auto& windows = series.windows();
  const double per_s = 1000.0 / series.window_ms();
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const auto& win = windows[w];
    if (win.live >= 0) live = win.live;
    const double ts = static_cast<double>(w) * window_us;
    add_counter("lookups_per_s", ts,
                static_cast<double>(win.completed) * per_s, pid);
    add_counter("failures_per_s", ts,
                static_cast<double>(win.failures) * per_s, pid);
    add_counter("messages_per_s", ts,
                static_cast<double>(win.messages) * per_s, pid);
    if (live >= 0) add_counter("live_nodes", ts, live, pid);
  }
}

JsonValue TraceExporter::to_json() const {
  JsonValue doc = JsonValue::object();
  doc.set("displayTimeUnit", JsonValue("ms"));
  doc.set("traceEvents", events_);
  return doc;
}

void TraceExporter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("TraceExporter: cannot open " + path);
  }
  to_json().write(out);
  out << '\n';
  if (!out) {
    throw std::runtime_error("TraceExporter: write failed for " + path);
  }
}

}  // namespace canon::telemetry
