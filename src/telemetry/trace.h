// Route tracing: per-hop event capture for any lookup in the stack.
//
// RingRouter, XorRouter, iterative_lookup and EventSimulator accept an
// optional RouteTraceSink. When one is attached, every routed lookup emits
// begin_lookup / on_hop* / end_lookup events carrying the chosen link, how
// many candidates were evaluated at the hop, the hierarchy level the hop
// happened at (the depth of the lowest common domain of its endpoints, as
// computed against the DomainTree), and — in the event simulator — the
// queueing delay and network latency of the hop. With no sink attached
// (the default) the instrumented loops pay one pointer test per hop.
//
// The "level" of a hop follows the paper's convergence vocabulary: a hop
// at level l stays inside a common level-l domain but crosses level-(l+1)
// domain boundaries. Deep levels are local hops; level 0 hops cross
// top-level domains. Summing a trace's hops over levels yields its total
// hop count, which is what the per-level breakdowns in the fig* reports
// rely on.
#ifndef CANON_TELEMETRY_TRACE_H
#define CANON_TELEMETRY_TRACE_H

#include <cstdint>
#include <vector>

namespace canon::telemetry {

/// One forwarding step of one lookup.
struct HopRecord {
  std::uint64_t lookup = 0;      ///< id returned by begin_lookup
  std::uint32_t from = 0;        ///< node index forwarding the message
  std::uint32_t to = 0;          ///< node index receiving it
  int hop_index = 0;             ///< 0-based position along the path
  int level = -1;                ///< LCA depth of (from, to); -1 if unknown
  std::uint32_t candidates = 0;  ///< neighbors evaluated at `from`
  double queue_ms = 0;           ///< time spent queued at `from` (event sim)
  double hop_ms = 0;             ///< modeled network latency of the hop
};

/// Receiver interface for route traces. Implementations must tolerate
/// interleaved lookups (the event simulator runs many concurrently) by
/// keying on HopRecord::lookup.
class RouteTraceSink {
 public:
  virtual ~RouteTraceSink() = default;

  /// Announces a lookup from node `from` towards `key`; the returned id
  /// tags all subsequent events of this lookup.
  virtual std::uint64_t begin_lookup(std::uint32_t from,
                                     std::uint64_t key) = 0;
  virtual void on_hop(const HopRecord& hop) = 0;
  virtual void end_lookup(std::uint64_t lookup, bool ok,
                          std::uint32_t terminal) = 0;
};

/// Records complete traces in memory for replay and aggregate breakdowns.
class RecordingTraceSink : public RouteTraceSink {
 public:
  struct LookupTrace {
    std::uint32_t from = 0;
    std::uint64_t key = 0;
    bool done = false;
    bool ok = false;
    std::uint32_t terminal = 0;
    std::vector<HopRecord> hops;
  };

  std::uint64_t begin_lookup(std::uint32_t from, std::uint64_t key) override;
  void on_hop(const HopRecord& hop) override;
  void end_lookup(std::uint64_t lookup, bool ok,
                  std::uint32_t terminal) override;

  const std::vector<LookupTrace>& lookups() const { return lookups_; }
  void clear() { lookups_.clear(); }

  /// Total hops across all recorded lookups.
  std::uint64_t total_hops() const;

  /// Hop counts indexed by hierarchy level (index l = hops at LCA depth l).
  /// Hops with unknown level (-1) are excluded; with level tracking on,
  /// the vector's sum equals total_hops(). Result is empty when no hop
  /// carries a level.
  std::vector<std::uint64_t> hops_by_level() const;

  /// Mean queueing delay (ms) over all recorded hops; 0 when empty.
  double mean_queue_ms() const;

 private:
  std::vector<LookupTrace> lookups_;
};

/// Counting-only sink for cheap aggregate breakdowns over many lookups
/// (no per-hop storage): per-level hop counts plus lookup/hop/failure
/// totals.
class LevelHopCounter : public RouteTraceSink {
 public:
  std::uint64_t begin_lookup(std::uint32_t from, std::uint64_t key) override;
  void on_hop(const HopRecord& hop) override;
  void end_lookup(std::uint64_t lookup, bool ok,
                  std::uint32_t terminal) override;

  std::uint64_t lookups() const { return lookups_; }
  std::uint64_t failures() const { return failures_; }
  std::uint64_t total_hops() const { return total_hops_; }
  const std::vector<std::uint64_t>& hops_by_level() const {
    return by_level_;
  }
  void clear();

 private:
  std::uint64_t lookups_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t total_hops_ = 0;
  std::vector<std::uint64_t> by_level_;
};

}  // namespace canon::telemetry

#endif  // CANON_TELEMETRY_TRACE_H
