// Append-only JSONL event journal: a churn run as a replayable artifact.
//
// Structural failures under churn manifest as silent drift long before
// lookup metrics degrade, so the journal records *what happened to the
// overlay* — joins, leaves, repair fan-out, lookup failures, periodic
// auditor snapshots — one JSON object per line, each stamped with a
// monotonically increasing sequence number. A journal can be diffed
// between runs (same seed => byte-identical event stream modulo wall
// clock, which the journal deliberately omits) and replayed: canon_doctor
// reconstructs the membership trajectory from the join/leave events and
// re-audits the final state (see docs/TELEMETRY.md for the schema).
//
// Event envelope (every line):   {"seq": <u64>, "type": "<type>", ...}
// Emitters in the library:
//   DynamicCrescendo::set_journal  -> join / leave / repair
//   EventSimulator::set_journal    -> lookup_failure / load_snapshot
//   StructureAuditor callers       -> audit_snapshot (via audit_snapshot())
//   FaultPlan::materialize         -> crash / revive (injected faults)
//
// Like the rest of the telemetry layer the journal is opt-in and
// single-threaded; no journal attached means no work on any code path.
#ifndef CANON_TELEMETRY_JOURNAL_H
#define CANON_TELEMETRY_JOURNAL_H

#include <cstdint>
#include <fstream>
#include <istream>
#include <memory>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/json_writer.h"

namespace canon::telemetry {

class EventJournal {
 public:
  /// Journals into a caller-owned stream (kept by reference).
  explicit EventJournal(std::ostream& os);

  /// Journals into `path`, truncating; throws std::runtime_error when the
  /// file cannot be opened.
  explicit EventJournal(const std::string& path);

  /// Number of events written so far == the next event's "seq".
  std::uint64_t events() const { return seq_; }

  /// Core primitive: writes one line `{"seq": n, "type": type, <fields>}`.
  /// `fields` must be an object (its members are appended after the
  /// envelope keys, preserving order). Returns the event's seq.
  std::uint64_t record(std::string_view type, JsonValue fields);

  // Convenience emitters for the library's event vocabulary. `size` is
  // always the membership size *after* the operation.
  std::uint64_t join(std::uint64_t id, const std::vector<std::uint16_t>& path,
                     int lookup_hops, std::size_t size);
  std::uint64_t leave(std::uint64_t id, std::size_t size);
  /// Link recomputations triggered by the join/leave of `pivot`.
  std::uint64_t repair(std::string_view cause, std::uint64_t pivot,
                       int nodes_updated);
  std::uint64_t lookup_failure(std::uint32_t from, std::uint64_t key,
                               int hops);
  /// Periodic structural-health snapshot (see audit::StructureAuditor).
  std::uint64_t audit_snapshot(std::size_t size, std::uint64_t checks,
                               std::uint64_t violations);
  /// Injected fail-stop of node index `node` (overlay ID `id`) at virtual
  /// time `at` (FaultPlan::materialize).
  std::uint64_t crash(std::uint32_t node, std::uint64_t id, std::uint64_t at);
  /// Injected revival; same fields as crash.
  std::uint64_t revive(std::uint32_t node, std::uint64_t id, std::uint64_t at);
  /// Top-k loaded nodes at simulated time `t_ms` (one per aggregation
  /// window; EventSimulator::set_load_snapshots). `top_nodes` pairs are
  /// (node index, messages handled), hottest first.
  std::uint64_t load_snapshot(
      double t_ms,
      std::span<const std::pair<std::uint32_t, std::uint64_t>> top_nodes);

  void flush();

 private:
  std::unique_ptr<std::ofstream> owned_;  // set for the path constructor
  std::ostream* os_;
  std::uint64_t seq_ = 0;
};

/// Parses a JSONL journal back into one JsonValue per event. Throws
/// std::runtime_error on malformed lines, a missing/non-numeric "seq" or
/// "type", or sequence numbers that are not exactly 0,1,2,... (a gap means
/// the artifact is truncated or interleaved and must not be trusted).
std::vector<JsonValue> read_journal(std::istream& is);
std::vector<JsonValue> read_journal_file(const std::string& path);

}  // namespace canon::telemetry

#endif  // CANON_TELEMETRY_JOURNAL_H
