// Scoped wall-clock timers feeding the metrics registry.
//
// ScopedTimer measures the wall-clock time from construction to stop() (or
// destruction) and records it into a LatencyHistogram — typically one
// resolved by name from the installed registry. When telemetry is off the
// histogram pointer is null and the timer degrades to two clock reads with
// no recording.
//
// Named timers additionally append a SpanRecord to the installed SpanLog
// (install_span_log), which is how construction and maintenance phases
// become "X" duration events in the Chrome/Perfetto trace export
// (telemetry/trace_export.h). With no span log installed (the default) a
// named timer pays one extra pointer test at stop.
#ifndef CANON_TELEMETRY_SCOPED_TIMER_H
#define CANON_TELEMETRY_SCOPED_TIMER_H

#include <chrono>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metrics.h"

namespace canon::telemetry {

/// One completed named span, microseconds relative to the log's epoch.
struct SpanRecord {
  std::string name;
  double ts_us = 0;   ///< start time since the SpanLog epoch
  double dur_us = 0;  ///< duration

  friend bool operator==(const SpanRecord&, const SpanRecord&) = default;
};

/// Collects completed ScopedTimer spans. Thread-safe (construction phases
/// stop timers on the main thread today, but nothing should break if a
/// worker ever owns one). Epoch is the log's construction time.
class SpanLog {
 public:
  SpanLog();

  /// Appends a completed span that started at `start` and ran `dur_ns`.
  void add(std::string_view name, std::chrono::steady_clock::time_point start,
           std::uint64_t dur_ns);

  std::vector<SpanRecord> snapshot() const;
  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<SpanRecord> spans_;
};

/// The process-wide span log, or nullptr when span capture is off (the
/// default). install_span_log(nullptr) turns capture off again; the caller
/// keeps ownership. Returns the previous log.
SpanLog* span_log();
SpanLog* install_span_log(SpanLog* log);

class ScopedTimer {
 public:
  /// Records into `hist` on stop; null means "time but do not record".
  explicit ScopedTimer(LatencyHistogram* hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}

  /// Resolves `name` against the installed registry (no-op if none) and
  /// remembers it for span capture. `name` must outlive the timer (every
  /// caller passes a literal).
  explicit ScopedTimer(std::string_view name)
      : hist_(maybe_histogram(name)),
        name_(name),
        start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  /// Stops the timer and records the elapsed duration (first call only).
  /// Returns the elapsed milliseconds.
  double stop() {
    if (!stopped_) {
      stopped_ = true;
      elapsed_ns_ = elapsed_now_ns();
      if (hist_) hist_->record_ns(elapsed_ns_);
      if (!name_.empty()) {
        if (SpanLog* log = span_log()) log->add(name_, start_, elapsed_ns_);
      }
    }
    return static_cast<double>(elapsed_ns_) / 1e6;
  }

  /// Elapsed milliseconds so far (or at stop time, once stopped).
  double elapsed_ms() const {
    return static_cast<double>(stopped_ ? elapsed_ns_ : elapsed_now_ns()) /
           1e6;
  }

 private:
  std::uint64_t elapsed_now_ns() const {
    const auto d = std::chrono::steady_clock::now() - start_;
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
    return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
  }

  LatencyHistogram* hist_;
  std::string_view name_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t elapsed_ns_ = 0;
  bool stopped_ = false;
};

}  // namespace canon::telemetry

#endif  // CANON_TELEMETRY_SCOPED_TIMER_H
