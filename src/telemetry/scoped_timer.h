// Scoped wall-clock timers feeding the metrics registry.
//
// ScopedTimer measures the wall-clock time from construction to stop() (or
// destruction) and records it into a LatencyHistogram — typically one
// resolved by name from the installed registry. When telemetry is off the
// histogram pointer is null and the timer degrades to two clock reads with
// no recording.
#ifndef CANON_TELEMETRY_SCOPED_TIMER_H
#define CANON_TELEMETRY_SCOPED_TIMER_H

#include <chrono>
#include <string_view>

#include "telemetry/metrics.h"

namespace canon::telemetry {

class ScopedTimer {
 public:
  /// Records into `hist` on stop; null means "time but do not record".
  explicit ScopedTimer(LatencyHistogram* hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}

  /// Resolves `name` against the installed registry (no-op if none).
  explicit ScopedTimer(std::string_view name)
      : ScopedTimer(maybe_histogram(name)) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  /// Stops the timer and records the elapsed duration (first call only).
  /// Returns the elapsed milliseconds.
  double stop() {
    if (!stopped_) {
      stopped_ = true;
      elapsed_ns_ = elapsed_now_ns();
      if (hist_) hist_->record_ns(elapsed_ns_);
    }
    return static_cast<double>(elapsed_ns_) / 1e6;
  }

  /// Elapsed milliseconds so far (or at stop time, once stopped).
  double elapsed_ms() const {
    return static_cast<double>(stopped_ ? elapsed_ns_ : elapsed_now_ns()) /
           1e6;
  }

 private:
  std::uint64_t elapsed_now_ns() const {
    const auto d = std::chrono::steady_clock::now() - start_;
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
    return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
  }

  LatencyHistogram* hist_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t elapsed_ns_ = 0;
  bool stopped_ = false;
};

}  // namespace canon::telemetry

#endif  // CANON_TELEMETRY_SCOPED_TIMER_H
