// Chrome trace-event export: construction phases and lookup traces as a
// file chrome://tracing or ui.perfetto.dev can open.
//
// The exporter assembles the JSON object format of the Trace Event spec —
// {"displayTimeUnit": "ms", "traceEvents": [...]} with "X" (complete),
// "C" (counter) and "M" (metadata) events, timestamps in microseconds —
// from three sources:
//
//   * a SpanLog of named ScopedTimer spans (construction and maintenance
//     phases, e.g. build.crescendo_ms), one track per process id;
//   * sampled lookup traces from a RecordingTraceSink, one thread track
//     per lookup, one "X" slice per hop (real queue/latency durations
//     when the trace came from the event simulator, a 1µs-per-hop
//     synthetic timeline otherwise);
//   * a TimeSeriesRecorder, exported as counter tracks on the simulated
//     clock.
//
// Surfaced to operators as `canon_doctor --trace-out=<path>` (see
// docs/TELEMETRY.md for a loading walkthrough).
#ifndef CANON_TELEMETRY_TRACE_EXPORT_H
#define CANON_TELEMETRY_TRACE_EXPORT_H

#include <cstdint>
#include <string>
#include <string_view>

#include "telemetry/json_writer.h"
#include "telemetry/scoped_timer.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"

namespace canon::telemetry {

class TraceExporter {
 public:
  /// Default process ids for the three standard tracks.
  static constexpr int kBuildPid = 1;
  static constexpr int kLookupPid = 2;
  static constexpr int kSeriesPid = 3;

  /// Names the process / thread track in the viewer ("M" metadata events).
  void set_process_name(int pid, std::string_view name);
  void set_thread_name(int pid, int tid, std::string_view name);

  /// One complete ("X") slice. Timestamps and durations in microseconds;
  /// `args` (when an object) becomes the slice's argument payload.
  void add_complete(std::string_view name, std::string_view category,
                    double ts_us, double dur_us, int pid, int tid,
                    JsonValue args = JsonValue());

  /// One counter ("C") sample.
  void add_counter(std::string_view name, double ts_us, double value,
                   int pid = kSeriesPid);

  /// Every span of `log` as "X" slices on one thread of `pid`.
  void add_span_log(const SpanLog& log, int pid = kBuildPid);

  /// The first `max_lookups` recorded lookups, one thread track each
  /// (tid = lookup index + 1). Hops with event-simulator timing use their
  /// real queue+latency durations; untimed hops get 1µs each.
  void add_lookup_traces(const RecordingTraceSink& sink,
                         std::size_t max_lookups = 64, int pid = kLookupPid);

  /// Every window of `series` as counter tracks (simulated ms -> trace µs).
  void add_timeseries(const TimeSeriesRecorder& series, int pid = kSeriesPid);

  std::size_t event_count() const { return events_.size(); }

  /// {"displayTimeUnit": "ms", "traceEvents": [...]}.
  JsonValue to_json() const;

  /// Writes to_json() compactly; throws std::runtime_error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  JsonValue events_ = JsonValue::array();
};

}  // namespace canon::telemetry

#endif  // CANON_TELEMETRY_TRACE_EXPORT_H
