#include "telemetry/journal.h"

#include <stdexcept>
#include <utility>

namespace canon::telemetry {

EventJournal::EventJournal(std::ostream& os) : os_(&os) {}

EventJournal::EventJournal(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path, std::ios::trunc)) {
  if (!owned_->is_open()) {
    throw std::runtime_error("EventJournal: cannot open " + path);
  }
  os_ = owned_.get();
}

std::uint64_t EventJournal::record(std::string_view type, JsonValue fields) {
  if (!fields.is_object()) {
    throw std::logic_error("EventJournal::record: fields must be an object");
  }
  JsonValue event = JsonValue::object();
  const std::uint64_t seq = seq_++;
  event.set("seq", JsonValue(seq));
  event.set("type", JsonValue(type));
  for (const auto& [key, value] : fields.members()) {
    event.set(key, value);
  }
  event.write(*os_);  // compact: one line per event
  *os_ << '\n';
  return seq;
}

std::uint64_t EventJournal::join(std::uint64_t id,
                                 const std::vector<std::uint16_t>& path,
                                 int lookup_hops, std::size_t size) {
  JsonValue fields = JsonValue::object();
  fields.set("id", JsonValue(id));
  JsonValue branches = JsonValue::array();
  for (const std::uint16_t b : path) {
    branches.push_back(JsonValue(static_cast<std::int64_t>(b)));
  }
  fields.set("path", std::move(branches));
  fields.set("lookup_hops", JsonValue(lookup_hops));
  fields.set("size", JsonValue(static_cast<std::uint64_t>(size)));
  return record("join", std::move(fields));
}

std::uint64_t EventJournal::leave(std::uint64_t id, std::size_t size) {
  JsonValue fields = JsonValue::object();
  fields.set("id", JsonValue(id));
  fields.set("size", JsonValue(static_cast<std::uint64_t>(size)));
  return record("leave", std::move(fields));
}

std::uint64_t EventJournal::repair(std::string_view cause, std::uint64_t pivot,
                                   int nodes_updated) {
  JsonValue fields = JsonValue::object();
  fields.set("cause", JsonValue(cause));
  fields.set("pivot", JsonValue(pivot));
  fields.set("nodes_updated", JsonValue(nodes_updated));
  return record("repair", std::move(fields));
}

std::uint64_t EventJournal::lookup_failure(std::uint32_t from,
                                           std::uint64_t key, int hops) {
  JsonValue fields = JsonValue::object();
  fields.set("from", JsonValue(static_cast<std::int64_t>(from)));
  fields.set("key", JsonValue(key));
  fields.set("hops", JsonValue(hops));
  return record("lookup_failure", std::move(fields));
}

std::uint64_t EventJournal::audit_snapshot(std::size_t size,
                                           std::uint64_t checks,
                                           std::uint64_t violations) {
  JsonValue fields = JsonValue::object();
  fields.set("size", JsonValue(static_cast<std::uint64_t>(size)));
  fields.set("checks", JsonValue(checks));
  fields.set("violations", JsonValue(violations));
  return record("audit_snapshot", std::move(fields));
}

namespace {

JsonValue fault_fields(std::uint32_t node, std::uint64_t id,
                       std::uint64_t at) {
  JsonValue fields = JsonValue::object();
  fields.set("node", JsonValue(static_cast<std::int64_t>(node)));
  fields.set("id", JsonValue(id));
  fields.set("at", JsonValue(at));
  return fields;
}

}  // namespace

std::uint64_t EventJournal::crash(std::uint32_t node, std::uint64_t id,
                                  std::uint64_t at) {
  return record("crash", fault_fields(node, id, at));
}

std::uint64_t EventJournal::revive(std::uint32_t node, std::uint64_t id,
                                   std::uint64_t at) {
  return record("revive", fault_fields(node, id, at));
}

std::uint64_t EventJournal::load_snapshot(
    double t_ms,
    std::span<const std::pair<std::uint32_t, std::uint64_t>> top_nodes) {
  JsonValue fields = JsonValue::object();
  fields.set("t_ms", JsonValue(t_ms));
  JsonValue nodes = JsonValue::array();
  for (const auto& [node, load] : top_nodes) {
    JsonValue entry = JsonValue::object();
    entry.set("node", JsonValue(static_cast<std::int64_t>(node)));
    entry.set("load", JsonValue(load));
    nodes.push_back(std::move(entry));
  }
  fields.set("nodes", std::move(nodes));
  return record("load_snapshot", std::move(fields));
}

void EventJournal::flush() { os_->flush(); }

std::vector<JsonValue> read_journal(std::istream& is) {
  std::vector<JsonValue> events;
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue event;
    try {
      event = JsonValue::parse(line);
    } catch (const std::exception& e) {
      throw std::runtime_error("journal line " + std::to_string(line_no) +
                               ": " + e.what());
    }
    const JsonValue* seq = event.get("seq");
    const JsonValue* type = event.get("type");
    if (!event.is_object() || !seq || !seq->is_number() || !type ||
        !type->is_string()) {
      throw std::runtime_error("journal line " + std::to_string(line_no) +
                               ": missing seq/type envelope");
    }
    if (seq->as_int() != static_cast<std::int64_t>(events.size())) {
      throw std::runtime_error(
          "journal line " + std::to_string(line_no) + ": seq " +
          std::to_string(seq->as_int()) + " breaks the 0,1,2,... contract");
    }
    events.push_back(std::move(event));
  }
  return events;
}

std::vector<JsonValue> read_journal_file(const std::string& path) {
  std::ifstream is(path);
  if (!is.is_open()) {
    throw std::runtime_error("read_journal_file: cannot open " + path);
  }
  return read_journal(is);
}

}  // namespace canon::telemetry
