#include "telemetry/mem_stats.h"

#include <cstdio>
#include <cstring>

#ifdef __unix__
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace canon::telemetry {

namespace {
MemoryAccountant* g_accountant = nullptr;
}  // namespace

MemoryAccountant* mem_accountant() { return g_accountant; }

MemoryAccountant* install_mem_accountant(MemoryAccountant* a) {
  MemoryAccountant* prev = g_accountant;
  g_accountant = a;
  return prev;
}

void MemoryAccountant::account(std::string_view tag, std::uint64_t bytes) {
  auto it = tags_.find(tag);
  if (it == tags_.end()) {
    it = tags_.emplace(std::string(tag), TagStats{}).first;
  }
  TagStats& t = it->second;
  t.current += bytes;
  if (t.current > t.peak) t.peak = t.current;
  ++t.charges;
  current_ += bytes;
  if (current_ > peak_) peak_ = current_;
}

void MemoryAccountant::release(std::string_view tag, std::uint64_t bytes) {
  auto it = tags_.find(tag);
  if (it == tags_.end()) return;
  TagStats& t = it->second;
  const std::uint64_t drop = bytes < t.current ? bytes : t.current;
  t.current -= drop;
  current_ -= drop < current_ ? drop : current_;
}

void MemoryAccountant::clear() {
  tags_.clear();
  current_ = 0;
  peak_ = 0;
}

JsonValue MemoryAccountant::to_json() const {
  JsonValue doc = JsonValue::object();
  JsonValue attributed = JsonValue::object();
  attributed.set("current_bytes", JsonValue(current_));
  attributed.set("peak_bytes", JsonValue(peak_));
  doc.set("attributed", std::move(attributed));
  JsonValue tags = JsonValue::object();
  for (const auto& [name, t] : tags_) {
    JsonValue o = JsonValue::object();
    o.set("current_bytes", JsonValue(t.current));
    o.set("peak_bytes", JsonValue(t.peak));
    o.set("charges", JsonValue(t.charges));
    tags.set(name, std::move(o));
  }
  doc.set("tags", std::move(tags));
  return doc;
}

namespace {

// Reads "VmRSS:  <n> kB" from /proc/self/status. Returns kB, or -1.
long read_vmrss_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return -1;
  char line[256];
  long kb = -1;
  while (std::fgets(line, sizeof(line), f)) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      if (std::sscanf(line + 6, "%ld", &kb) != 1) kb = -1;
      break;
    }
  }
  std::fclose(f);
  return kb;
}

// Resident pages from /proc/self/statm (second field). Returns kB, or -1.
long read_statm_kb() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (!f) return -1;
  long size_pages = 0, resident_pages = 0;
  const int got = std::fscanf(f, "%ld %ld", &size_pages, &resident_pages);
  std::fclose(f);
  if (got != 2) return -1;
  long page_kb = 4;
#ifdef __unix__
  const long page_bytes = sysconf(_SC_PAGESIZE);
  if (page_bytes > 0) page_kb = page_bytes / 1024;
#endif
  return resident_pages * page_kb;
}

}  // namespace

double peak_rss_mb() {
#ifdef __unix__
  struct rusage u;
  if (getrusage(RUSAGE_SELF, &u) == 0) {
    // ru_maxrss is KB on Linux, bytes on macOS; this project targets Linux.
    return static_cast<double>(u.ru_maxrss) / 1024.0;
  }
#endif
  return 0;
}

double current_rss_mb() {
  long kb = read_vmrss_kb();
  if (kb < 0) kb = read_statm_kb();
  if (kb >= 0) return static_cast<double>(kb) / 1024.0;
  return peak_rss_mb();
}

}  // namespace canon::telemetry
