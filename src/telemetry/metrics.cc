#include "telemetry/metrics.h"

#include <bit>

namespace canon::telemetry {

namespace {
MetricsRegistry* g_registry = nullptr;
}  // namespace

double LatencyHistogram::mean_ms() const {
  if (count_ == 0) return 0;
  return static_cast<double>(sum_ns_) / 1e6 / static_cast<double>(count_);
}

int LatencyHistogram::bucket_index(std::uint64_t ns) {
  if (ns == 0) return 0;
  const int idx = std::bit_width(ns);  // floor(log2(ns)) + 1
  return idx < kBuckets ? idx : kBuckets - 1;
}

std::uint64_t LatencyHistogram::bucket_floor_ns(int i) {
  if (i <= 0) return 0;
  return std::uint64_t{1} << (i - 1);
}

double LatencyHistogram::quantile_upper_ms(double q) const {
  if (count_ == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const double target = q * static_cast<double>(count_);
  std::uint64_t acc = 0;
  for (int i = 0; i < kBuckets; ++i) {
    acc += buckets_[static_cast<std::size_t>(i)];
    if (static_cast<double>(acc) >= target && acc > 0) {
      // Exclusive upper edge of bucket i == inclusive floor of bucket i+1;
      // clamp the open-ended last bucket to the observed max.
      if (i + 1 >= kBuckets) break;
      const std::uint64_t edge = bucket_floor_ns(i + 1);
      return static_cast<double>(edge < max_ns_ ? edge : max_ns_) / 1e6;
    }
  }
  return static_cast<double>(max_ns_) / 1e6;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  }
  overflow_ += other.overflow_;
  count_ += other.count_;
  sum_ns_ += other.sum_ns_;
  if (other.min_ns_ < min_ns_) min_ns_ = other.min_ns_;
  if (other.max_ns_ > max_ns_) max_ns_ = other.max_ns_;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), LatencyHistogram{})
      .first->second;
}

MetricsRegistry* registry() { return g_registry; }

MetricsRegistry* install_registry(MetricsRegistry* r) {
  MetricsRegistry* prev = g_registry;
  g_registry = r;
  return prev;
}

}  // namespace canon::telemetry
