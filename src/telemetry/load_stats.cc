#include "telemetry/load_stats.h"

#include <algorithm>
#include <span>
#include <stdexcept>

namespace canon::telemetry {

double gini_coefficient(std::span<const std::uint64_t> loads) {
  if (loads.empty()) return 0;
  std::vector<std::uint64_t> sorted(loads.begin(), loads.end());
  std::sort(sorted.begin(), sorted.end());
  // G = (2 * sum_i i*x_i) / (n * sum_i x_i) - (n + 1) / n  over the
  // ascending sort with 1-based ranks.
  double weighted = 0;
  double total = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double x = static_cast<double>(sorted[i]);
    weighted += static_cast<double>(i + 1) * x;
    total += x;
  }
  if (total == 0) return 0;
  const double n = static_cast<double>(sorted.size());
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

std::vector<std::pair<std::uint32_t, std::uint64_t>> top_loaded_nodes(
    std::span<const std::uint64_t> loads, std::size_t k) {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> all;
  all.reserve(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    all.emplace_back(static_cast<std::uint32_t>(i), loads[i]);
  }
  const std::size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(take),
                    all.end(), [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  all.resize(take);
  return all;
}

LoadAccountant::LoadAccountant(const DomainTree& tree,
                               std::span<const std::uint64_t> ids,
                               int domain_level)
    : tree_(&tree),
      ids_(ids.begin(), ids.end()),
      domain_level_(domain_level),
      slot_(tree.node_count(), kNoSlot),
      load_(tree.node_count(), 0),
      source_(tree.node_count(), 0),
      relay_(tree.node_count(), 0),
      terminal_(tree.node_count(), 0) {
  if (domain_level < 0) {
    throw std::invalid_argument("LoadAccountant: negative domain level");
  }
  if (!ids_.empty() && ids_.size() != tree.node_count()) {
    throw std::invalid_argument("LoadAccountant: ids/population mismatch");
  }
  // Dense slots for the level-L domains, in DomainTree index order (the
  // tree assigns indices deterministically, so slot order is stable).
  std::vector<std::uint32_t> domain_slot(
      static_cast<std::size_t>(tree.domain_count()), kNoSlot);
  for (int d = 0; d < tree.domain_count(); ++d) {
    if (tree.domain(d).depth != domain_level) continue;
    domain_slot[static_cast<std::size_t>(d)] =
        static_cast<std::uint32_t>(slot_domain_.size());
    slot_domain_.push_back(d);
  }
  for (std::uint32_t v = 0; v < tree.node_count(); ++v) {
    const std::span<const std::int32_t> chain = tree.domain_chain(v);
    if (static_cast<int>(chain.size()) > domain_level) {
      slot_[v] =
          domain_slot[static_cast<std::size_t>(
              chain[static_cast<std::size_t>(domain_level)])];
    }
  }
  domain_hops_.assign(slot_domain_.size(), 0);
}

int LoadAccountant::lca_level(std::uint32_t a, std::uint32_t b) const {
  const std::span<const std::int32_t> ca = tree_->domain_chain(a);
  const std::span<const std::int32_t> cb = tree_->domain_chain(b);
  const std::size_t limit = std::min(ca.size(), cb.size());
  std::size_t common = 0;
  while (common < limit && ca[common] == cb[common]) ++common;
  return static_cast<int>(common) - 1;  // chain[0] is the root (level 0)
}

void LoadAccountant::observe(std::span<const std::uint32_t> path, bool ok,
                             std::uint64_t key, Shard& shard) const {
  if (path.empty()) return;
  ++shard.queries;
  if (ok) ++shard.ok;
  shard.keys.push_back(key);
  shard.total_hops += path.size() - 1;

  if (path.size() == 1) {
    // The source already owned the key: one message handled, in both the
    // source and terminal roles.
    shard.touches.push_back((static_cast<std::uint64_t>(path[0]) << 3) |
                            kSourceBit | kTerminalBit);
  } else {
    shard.touches.push_back((static_cast<std::uint64_t>(path.front()) << 3) |
                            kSourceBit);
    for (std::size_t j = 1; j + 1 < path.size(); ++j) {
      shard.touches.push_back((static_cast<std::uint64_t>(path[j]) << 3) |
                              kRelayBit);
    }
    shard.touches.push_back((static_cast<std::uint64_t>(path.back()) << 3) |
                            kTerminalBit);
  }

  const std::uint32_t source_slot = slot_[path.front()];
  bool confined = source_slot != kNoSlot;
  for (std::size_t j = 0; j + 1 < path.size(); ++j) {
    const int level = lca_level(path[j], path[j + 1]);
    if (level >= 0) {
      if (static_cast<std::size_t>(level) >= shard.hops_by_level.size()) {
        shard.hops_by_level.resize(static_cast<std::size_t>(level) + 1, 0);
      }
      ++shard.hops_by_level[static_cast<std::size_t>(level)];
    }
    const std::uint32_t fs = slot_[path[j]];
    const std::uint32_t ts = slot_[path[j + 1]];
    if (fs != kNoSlot && fs == ts) {
      if (shard.domain_hops.size() < domain_hops_.size()) {
        shard.domain_hops.resize(domain_hops_.size(), 0);
      }
      ++shard.domain_hops[fs];
    }
    if (ts != source_slot) confined = false;
  }
  // Confinement is only meaningful for OK lookups whose endpoints share a
  // level-L domain: did the whole path stay inside it?
  if (ok && source_slot != kNoSlot && slot_[path.back()] == source_slot) {
    ++shard.intra_queries;
    if (confined) ++shard.confined_queries;
  }
}

void LoadAccountant::merge(const Shard& shard) {
  for (const std::uint64_t touch : shard.touches) {
    const std::uint32_t node = static_cast<std::uint32_t>(touch >> 3);
    ++load_[node];
    if (touch & kSourceBit) ++source_[node];
    if (touch & kRelayBit) ++relay_[node];
    if (touch & kTerminalBit) ++terminal_[node];
  }
  for (const std::uint64_t key : shard.keys) ++key_counts_[key];
  if (shard.hops_by_level.size() > hops_by_level_.size()) {
    hops_by_level_.resize(shard.hops_by_level.size(), 0);
  }
  for (std::size_t l = 0; l < shard.hops_by_level.size(); ++l) {
    hops_by_level_[l] += shard.hops_by_level[l];
  }
  for (std::size_t s = 0; s < shard.domain_hops.size(); ++s) {
    domain_hops_[s] += shard.domain_hops[s];
  }
  queries_ += shard.queries;
  ok_ += shard.ok;
  total_hops_ += shard.total_hops;
  intra_queries_ += shard.intra_queries;
  confined_queries_ += shard.confined_queries;
}

double LoadAccountant::mean_load() const {
  if (load_.empty()) return 0;
  // sum(load) == total_hops + queries by construction: one message handled
  // per path appearance.
  return static_cast<double>(total_hops_ + queries_) /
         static_cast<double>(load_.size());
}

std::uint64_t LoadAccountant::max_load() const {
  std::uint64_t best = 0;
  for (const std::uint64_t l : load_) best = std::max(best, l);
  return best;
}

double LoadAccountant::max_mean_ratio() const {
  const double mean = mean_load();
  return mean > 0 ? static_cast<double>(max_load()) / mean : 0;
}

std::vector<NodeLoad> LoadAccountant::top_nodes(std::size_t k) const {
  const auto top = top_loaded_nodes(load_, k);
  std::vector<NodeLoad> out;
  out.reserve(top.size());
  for (const auto& [node, total] : top) {
    NodeLoad nl;
    nl.node = node;
    nl.id = node < ids_.size() ? ids_[node] : 0;
    nl.total = total;
    nl.as_source = source_[node];
    nl.as_relay = relay_[node];
    nl.as_terminal = terminal_[node];
    out.push_back(nl);
  }
  return out;
}

std::vector<KeyLoad> LoadAccountant::top_keys(std::size_t k) const {
  std::vector<KeyLoad> all;
  all.reserve(key_counts_.size());
  for (const auto& [key, count] : key_counts_) {
    all.push_back(KeyLoad{key, count});
  }
  const std::size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(take),
                    all.end(), [](const KeyLoad& a, const KeyLoad& b) {
                      if (a.lookups != b.lookups) return a.lookups > b.lookups;
                      return a.key < b.key;
                    });
  all.resize(take);
  return all;
}

std::vector<DomainLoad> LoadAccountant::domain_loads() const {
  std::vector<DomainLoad> out;
  out.reserve(slot_domain_.size());
  for (std::size_t s = 0; s < slot_domain_.size(); ++s) {
    DomainLoad dl;
    dl.domain = slot_domain_[s];
    dl.members = tree_->domain(dl.domain).members.size();
    dl.hops_inside = domain_hops_[s];
    dl.share = total_hops_ > 0 ? static_cast<double>(dl.hops_inside) /
                                     static_cast<double>(total_hops_)
                               : 0;
    // Dotted branch path root->domain, e.g. "3" at level 1, "3.2" at 2.
    std::vector<std::uint16_t> branches;
    for (int d = dl.domain; tree_->domain(d).parent >= 0;
         d = tree_->domain(d).parent) {
      branches.push_back(tree_->domain(d).branch);
    }
    for (auto it = branches.rbegin(); it != branches.rend(); ++it) {
      if (!dl.label.empty()) dl.label += '.';
      dl.label += std::to_string(*it);
    }
    out.push_back(std::move(dl));
  }
  return out;
}

double LoadAccountant::confinement_ratio() const {
  return intra_queries_ == 0
             ? 1.0
             : static_cast<double>(confined_queries_) /
                   static_cast<double>(intra_queries_);
}

JsonValue LoadAccountant::to_json(std::size_t top_k) const {
  JsonValue o = JsonValue::object();
  o.set("queries", JsonValue(queries_));
  o.set("ok", JsonValue(ok_));
  o.set("total_hops", JsonValue(total_hops_));
  o.set("domain_level", JsonValue(static_cast<std::int64_t>(domain_level_)));

  JsonValue dist = JsonValue::object();
  dist.set("mean", JsonValue(mean_load()));
  dist.set("max", JsonValue(max_load()));
  dist.set("max_mean", JsonValue(max_mean_ratio()));
  dist.set("gini", JsonValue(gini()));
  o.set("load", std::move(dist));

  JsonValue nodes = JsonValue::array();
  for (const NodeLoad& nl : top_nodes(top_k)) {
    JsonValue row = JsonValue::object();
    row.set("node", JsonValue(static_cast<std::uint64_t>(nl.node)));
    row.set("id", JsonValue(nl.id));
    row.set("total", JsonValue(nl.total));
    row.set("as_source", JsonValue(nl.as_source));
    row.set("as_relay", JsonValue(nl.as_relay));
    row.set("as_terminal", JsonValue(nl.as_terminal));
    nodes.push_back(std::move(row));
  }
  o.set("top_nodes", std::move(nodes));

  JsonValue keys = JsonValue::array();
  for (const KeyLoad& kl : top_keys(top_k)) {
    JsonValue row = JsonValue::object();
    row.set("key", JsonValue(kl.key));
    row.set("lookups", JsonValue(kl.lookups));
    keys.push_back(std::move(row));
  }
  o.set("top_keys", std::move(keys));

  JsonValue levels = JsonValue::array();
  for (const std::uint64_t h : hops_by_level_) levels.push_back(JsonValue(h));
  o.set("hops_by_level", std::move(levels));

  JsonValue domains = JsonValue::array();
  for (const DomainLoad& dl : domain_loads()) {
    JsonValue row = JsonValue::object();
    row.set("label", JsonValue(dl.label));
    row.set("members", JsonValue(static_cast<std::uint64_t>(dl.members)));
    row.set("hops_inside", JsonValue(dl.hops_inside));
    row.set("share", JsonValue(dl.share));
    domains.push_back(std::move(row));
  }
  o.set("domains", std::move(domains));

  JsonValue conf = JsonValue::object();
  conf.set("intra_queries", JsonValue(intra_queries_));
  conf.set("confined", JsonValue(confined_queries_));
  conf.set("ratio", JsonValue(confinement_ratio()));
  o.set("confinement", std::move(conf));
  return o;
}

}  // namespace canon::telemetry
