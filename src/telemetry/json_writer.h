// Dependency-free JSON document model, writer and parser.
//
// Just enough JSON for machine-readable experiment reports: a JsonValue
// variant (null / bool / number / string / array / object), a serializer
// with full string escaping and stable member ordering (objects preserve
// insertion order, so a report's schema is byte-stable across runs), and a
// strict recursive-descent parser used by tests and report-diff tooling to
// round-trip generated reports.
//
// Numbers are stored as int64 when representable (serialized without a
// decimal point) and double otherwise.
#ifndef CANON_TELEMETRY_JSON_WRITER_H
#define CANON_TELEMETRY_JSON_WRITER_H

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace canon::telemetry {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(int v) : JsonValue(static_cast<std::int64_t>(v)) {}
  JsonValue(std::int64_t v) : kind_(Kind::kNumber), is_int_(true), int_(v) {}
  JsonValue(std::uint64_t v);
  JsonValue(double v);
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}
  JsonValue(std::string_view s) : kind_(Kind::kString), string_(s) {}
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  static JsonValue array() { return JsonValue(Kind::kArray); }
  static JsonValue object() { return JsonValue(Kind::kObject); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }

  /// Typed accessors; throw std::logic_error on kind mismatch.
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;

  /// Array access.
  void push_back(JsonValue v);
  const std::vector<JsonValue>& items() const;
  std::size_t size() const;

  /// Object access. set() replaces an existing key in place (keeping its
  /// position) or appends; get() returns nullptr when absent.
  JsonValue& set(std::string_view key, JsonValue v);
  const JsonValue* get(std::string_view key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Serializes; indent > 0 pretty-prints with that many spaces per level.
  void write(std::ostream& os, int indent = 0) const;
  std::string dump(int indent = 0) const;

  /// Strict parse of a complete JSON document (throws std::runtime_error
  /// on malformed input or trailing garbage).
  static JsonValue parse(std::string_view text);

 private:
  explicit JsonValue(Kind k) : kind_(k) {}
  void write_indented(std::ostream& os, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  bool is_int_ = false;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Writes `s` as a JSON string literal (quotes, escapes) to `os`.
void write_json_string(std::ostream& os, std::string_view s);

}  // namespace canon::telemetry

#endif  // CANON_TELEMETRY_JSON_WRITER_H
