#include "telemetry/trace.h"

#include <stdexcept>

namespace canon::telemetry {

std::uint64_t RecordingTraceSink::begin_lookup(std::uint32_t from,
                                               std::uint64_t key) {
  LookupTrace t;
  t.from = from;
  t.key = key;
  lookups_.push_back(std::move(t));
  return lookups_.size() - 1;
}

void RecordingTraceSink::on_hop(const HopRecord& hop) {
  if (hop.lookup >= lookups_.size()) {
    throw std::out_of_range("RecordingTraceSink::on_hop: unknown lookup");
  }
  lookups_[hop.lookup].hops.push_back(hop);
}

void RecordingTraceSink::end_lookup(std::uint64_t lookup, bool ok,
                                    std::uint32_t terminal) {
  if (lookup >= lookups_.size()) {
    throw std::out_of_range("RecordingTraceSink::end_lookup: unknown lookup");
  }
  LookupTrace& t = lookups_[lookup];
  t.done = true;
  t.ok = ok;
  t.terminal = terminal;
}

std::uint64_t RecordingTraceSink::total_hops() const {
  std::uint64_t n = 0;
  for (const LookupTrace& t : lookups_) n += t.hops.size();
  return n;
}

std::vector<std::uint64_t> RecordingTraceSink::hops_by_level() const {
  std::vector<std::uint64_t> by_level;
  for (const LookupTrace& t : lookups_) {
    for (const HopRecord& h : t.hops) {
      if (h.level < 0) continue;
      if (static_cast<std::size_t>(h.level) >= by_level.size()) {
        by_level.resize(static_cast<std::size_t>(h.level) + 1, 0);
      }
      ++by_level[static_cast<std::size_t>(h.level)];
    }
  }
  return by_level;
}

double RecordingTraceSink::mean_queue_ms() const {
  double sum = 0;
  std::uint64_t n = 0;
  for (const LookupTrace& t : lookups_) {
    for (const HopRecord& h : t.hops) {
      sum += h.queue_ms;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0;
}

std::uint64_t LevelHopCounter::begin_lookup(std::uint32_t, std::uint64_t) {
  return lookups_++;
}

void LevelHopCounter::on_hop(const HopRecord& hop) {
  ++total_hops_;
  if (hop.level < 0) return;
  if (static_cast<std::size_t>(hop.level) >= by_level_.size()) {
    by_level_.resize(static_cast<std::size_t>(hop.level) + 1, 0);
  }
  ++by_level_[static_cast<std::size_t>(hop.level)];
}

void LevelHopCounter::end_lookup(std::uint64_t, bool ok, std::uint32_t) {
  if (!ok) ++failures_;
}

void LevelHopCounter::clear() {
  lookups_ = 0;
  failures_ = 0;
  total_hops_ = 0;
  by_level_.clear();
}

}  // namespace canon::telemetry
