// Windowed time series over the *simulated* clock.
//
// The event simulator and the fault plans give the library a virtual
// timeline; TimeSeriesRecorder buckets what happens on it into fixed-width
// windows so degradation under churn or crashes becomes a curve (lookups/s
// issued and completed, failures/s, messages/s, mean queueing delay as a
// congestion proxy, live-node count) rather than one end-of-run number.
//
// Determinism: windows are pure functions of the recorded (time, value)
// stream; the event simulator is serial, so a fixed seed yields a
// byte-identical series at any thread count. Like the rest of the
// telemetry layer the recorder is opt-in and single-threaded.
#ifndef CANON_TELEMETRY_TIMESERIES_H
#define CANON_TELEMETRY_TIMESERIES_H

#include <cstdint>
#include <vector>

#include "telemetry/json_writer.h"

namespace canon::telemetry {

class TimeSeriesRecorder {
 public:
  /// Buckets events into windows of `window_ms` simulated milliseconds
  /// (window w covers [w*window_ms, (w+1)*window_ms)). Throws on a
  /// non-positive width.
  explicit TimeSeriesRecorder(double window_ms = 50.0);

  double window_ms() const { return window_ms_; }

  /// One aggregation window. `live` is the last live_nodes() value set
  /// inside the window, -1 when none was (to_json carries the previous
  /// window's value forward).
  struct Window {
    std::uint64_t issued = 0;     ///< lookups submitted
    std::uint64_t completed = 0;  ///< lookups finished (ok or not)
    std::uint64_t failures = 0;   ///< lookups finished unsuccessfully
    std::uint64_t messages = 0;   ///< messages processed at nodes
    double latency_sum_ms = 0;    ///< sum over completed lookups
    double queue_sum_ms = 0;      ///< sum over messages
    double live = -1;
    double rss = -1;              ///< last rss_mb() sample, -1 when none
  };

  void lookup_issued(double at_ms);
  void lookup_completed(double at_ms, bool ok, double latency_ms);
  /// One message processed at a node, after queueing `queue_ms`.
  void message(double at_ms, double queue_ms);
  /// Reports the live-node count as of `at_ms` (last write in a window
  /// wins; the value is carried forward across silent windows).
  void live_nodes(double at_ms, double live);
  /// Reports the process resident set size (MB) as of `at_ms` — the
  /// memory-over-time channel of the resource observatory. Same
  /// last-write-wins / carry-forward semantics as live_nodes; the rss_mb
  /// column only appears in to_json() once a sample was recorded, so
  /// existing series schemas are unchanged. RSS is a measured quantity:
  /// recorders that must stay byte-identical across runs should not feed
  /// this channel (bench_scale strips it for the determinism diff).
  void rss_mb(double at_ms, double mb);

  const std::vector<Window>& windows() const { return windows_; }
  bool empty() const { return windows_.empty(); }

  /// The window index covering `at_ms` (clamped to 0 for negative times).
  std::size_t window_index(double at_ms) const;

  /// Array of rows {t_ms, issued_per_s, lookups_per_s, failures_per_s,
  /// messages_per_s, mean_latency_ms, mean_queue_ms, live_nodes[, rss_mb]},
  /// one per window from 0 to the last touched window. live_nodes (and
  /// rss_mb, present only when sampled) are carried forward; -1 until the
  /// first call.
  JsonValue to_json() const;

 private:
  Window& window_at(double at_ms);

  double window_ms_;
  std::vector<Window> windows_;
  bool has_rss_ = false;
};

}  // namespace canon::telemetry

#endif  // CANON_TELEMETRY_TIMESERIES_H
