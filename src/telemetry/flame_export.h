// Collapsed-stack (FlameGraph / speedscope) export of ScopedTimer spans.
//
// The SpanLog records flat (name, start, duration) intervals; phases nest
// lexically (a ScopedTimer opened inside another's lifetime), so the call
// tree can be reconstructed by interval containment: sort spans by start
// time (duration descending on ties) and make each span a child of the
// innermost earlier span that still covers it. From that tree the exporter
// emits
//
//   * the FlameGraph collapsed format — one line per tree path,
//     "root;child;grandchild <self_us>", self time = the span's duration
//     minus its direct children's, in integer microseconds. flamegraph.pl
//     and speedscope both ingest this directly;
//   * a self-time-per-phase table (JSON array) aggregating every span
//     name: {name, count, total_us, self_us} sorted by self time
//     descending — the "where did the wall clock actually go" summary
//     that a nested trace makes hard to eyeball.
//
// Wall-clock durations are machine-dependent, so flame output is a
// profiling artifact, not a determinism-checked report section (the
// schema checker strips it the way it strips real_time).
//
// Surfaced as `canon_doctor --resource-report --flame-out=<path>` and by
// examples/soak next to its Chrome trace (docs/TELEMETRY.md §10).
#ifndef CANON_TELEMETRY_FLAME_EXPORT_H
#define CANON_TELEMETRY_FLAME_EXPORT_H

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/json_writer.h"
#include "telemetry/scoped_timer.h"

namespace canon::telemetry {

/// One node of the reconstructed call tree (indices into the flat vector;
/// -1 parent = root-level span).
struct FlameNode {
  SpanRecord span;
  int parent = -1;
  std::vector<int> children;
  double self_us = 0;  ///< dur_us minus direct children's dur_us, >= 0
};

/// Reconstructs the call tree from a flat span list by interval
/// containment (see the file comment). Input order does not matter.
std::vector<FlameNode> build_flame_tree(std::vector<SpanRecord> spans);

/// The collapsed-stack text: one "a;b;c <self_us>" line per distinct tree
/// path with nonzero integer self time (repeated paths — per-shard spans —
/// sum), in deterministic first-occurrence order.
std::string collapse_flame_tree(const std::vector<FlameNode>& tree);

/// Aggregated per-name table: [{name, count, total_us, self_us}, ...]
/// sorted by self_us descending, name ascending on ties.
JsonValue flame_phase_table(const std::vector<FlameNode>& tree);

/// Convenience: tree + collapse + write to `path` (throws
/// std::runtime_error on I/O failure). Returns the number of lines.
std::size_t write_collapsed_stacks(const SpanLog& log,
                                   const std::string& path);

}  // namespace canon::telemetry

#endif  // CANON_TELEMETRY_FLAME_EXPORT_H
